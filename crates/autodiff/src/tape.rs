//! The gradient tape and its operator methods.

use crate::op::{backward_contributions, Op};
use crate::workspace::{shared_workspace, SharedWorkspace};
use desalign_graph::Csr;
use desalign_tensor::Matrix;
use std::rc::Rc;

/// A handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    requires_grad: bool,
}

/// An append-only arena of computation nodes supporting reverse-mode
/// differentiation. See the crate docs for a usage example.
pub struct Tape {
    nodes: Vec<Node>,
    ws: SharedWorkspace,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Return this step's gradient buffers to the pool so the next
        // tape's backward pass reuses them instead of allocating. Forward
        // values are *not* pooled: they are allocated by the tensor kernels
        // (outside the workspace), so pooling them would grow the pool by
        // one tape's worth of buffers every step without ever serving a
        // hit. Grad-only recycling keeps the pool size pinned at one
        // backward pass's working set.
        let mut ws = self.ws.borrow_mut();
        for node in self.nodes.drain(..) {
            if let Some(g) = node.grad {
                ws.recycle(g);
            }
        }
    }
}

impl Tape {
    /// Creates an empty tape with its own private gradient workspace.
    pub fn new() -> Self {
        Self::with_workspace(shared_workspace())
    }

    /// Creates an empty tape whose backward pass allocates gradients from
    /// `ws` and returns them to it on drop. Hand the same handle to every
    /// per-step tape of a training run and steady-state steps allocate no
    /// new gradient buffers (see [`crate::Workspace`]).
    pub fn with_workspace(ws: SharedWorkspace) -> Self {
        Self { nodes: Vec::new(), ws }
    }

    /// The workspace backing this tape's gradient allocations.
    pub fn workspace(&self) -> &SharedWorkspace {
        &self.ws
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a trainable input. Its gradient is available after
    /// [`Tape::backward`].
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a non-trainable input; no gradient flows into it.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node, if backward has reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite forward value from op");
        self.nodes.push(Node { value, grad: None, op, requires_grad });
        Var(self.nodes.len() - 1)
    }

    fn push_op(&mut self, value: Matrix, op: Op) -> Var {
        let requires = op.parents().iter().any(|&p| self.nodes[p].requires_grad);
        self.push(value, op, requires)
    }

    /// Runs reverse-mode differentiation from `loss`, which must be `1×1`.
    ///
    /// Gradients of all reachable `requires_grad` nodes (including
    /// intermediates) are accumulated and retrievable via [`Tape::grad`].
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar node.
    pub fn backward(&mut self, loss: Var) {
        let shape = self.nodes[loss.0].value.shape();
        assert_eq!(shape, (1, 1), "Tape::backward: loss must be 1x1, got {}x{}", shape.0, shape.1);
        self.nodes[loss.0].grad = Some(self.ws.borrow_mut().full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(grad) = self.nodes[i].grad.take() else { continue };
            let op = self.nodes[i].op.clone();
            let contribs = {
                let nodes = &self.nodes;
                let value_of = |p: usize| &nodes[p].value;
                let mut ws = self.ws.borrow_mut();
                backward_contributions(&op, &nodes[i].value, &grad, &value_of, &mut ws)
            };
            self.nodes[i].grad = Some(grad);
            for (pid, g) in contribs {
                if !self.nodes[pid].requires_grad {
                    // Contributions into non-trainable parents are merged
                    // nowhere; hand their buffers straight back.
                    self.ws.borrow_mut().recycle(g);
                    continue;
                }
                match &mut self.nodes[pid].grad {
                    Some(acc) => {
                        acc.axpy(1.0, &g);
                        self.ws.borrow_mut().recycle(g);
                    }
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }

    // ---- element-wise and scalar ops -------------------------------------

    /// `a + b` (element-wise).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push_op(v, Op::Add(a.0, b.0))
    }

    /// `a − b` (element-wise).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push_op(v, Op::Sub(a.0, b.0))
    }

    /// `a ⊙ b` (Hadamard).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push_op(v, Op::Mul(a.0, b.0))
    }

    /// `a · c` for scalar `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push_op(v, Op::Scale(a.0, c))
    }

    /// `a + c` element-wise for scalar `c`.
    pub fn add_const(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push_op(v, Op::AddConst(a.0, c))
    }

    /// `relu(a)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push_op(v, Op::Relu(a.0))
    }

    /// `leaky_relu(a)` with negative slope `slope`.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push_op(v, Op::LeakyRelu(a.0, slope))
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push_op(v, Op::Exp(a.0))
    }

    /// `a²` (element-wise).
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push_op(v, Op::Square(a.0))
    }

    /// `ln(a)` (element-wise). Inputs must be strictly positive.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::ln);
        self.push_op(v, Op::Ln(a.0))
    }

    /// Element-wise division `a ⊘ b`. Divisors must be non-zero.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let x = self.value(a);
        let y = self.value(b);
        y.expect_shape(x.rows(), x.cols(), "Tape::div");
        let data = x.as_slice().iter().zip(y.as_slice()).map(|(&p, &q)| p / q).collect();
        let v = Matrix::from_vec(x.rows(), x.cols(), data);
        self.push_op(v, Op::Div(a.0, b.0))
    }

    /// `√a` (element-wise). Inputs must be non-negative.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::sqrt);
        self.push_op(v, Op::Sqrt(a.0))
    }

    /// `artanh(a)` (element-wise), defined for |a| < 1 — the hyperbolic
    /// distance kernel of the Poincaré ball (used by the HEA baseline).
    /// Inputs are clamped to ±(1 − 1e-5) for numerical safety.
    pub fn artanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| {
            let x = x.clamp(-1.0 + 1e-5, 1.0 - 1e-5);
            0.5 * ((1.0 + x) / (1.0 - x)).ln()
        });
        self.push_op(v, Op::Artanh(a.0))
    }

    // ---- products ---------------------------------------------------------

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push_op(v, Op::MatMul(a.0, b.0))
    }

    /// Sparse constant × dense variable: `S × a`.
    pub fn spmm(&mut self, s: Rc<Csr>, a: Var) -> Var {
        let v = s.spmm(self.value(a));
        self.push_op(v, Op::SpMM(s, a.0))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push_op(v, Op::Transpose(a.0))
    }

    // ---- row-wise normalizations -------------------------------------------

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push_op(v, Op::SoftmaxRows(a.0))
    }

    /// Row-wise layer normalization (no affine parameters).
    pub fn layernorm_rows(&mut self, a: Var, eps: f32) -> Var {
        let v = self.value(a).layernorm_rows(eps);
        self.push_op(v, Op::LayerNormRows(a.0, eps))
    }

    /// Row-wise ℓ2 normalization with norm clamp `eps`.
    pub fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        // Forward uses the clamped form y = x / max(‖x‖, eps) so the
        // backward rule in `op.rs` matches exactly.
        let x = self.value(a);
        let mut v = x.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let norm = row.iter().map(|t| t * t).sum::<f32>().sqrt().max(eps);
            for t in row {
                *t /= norm;
            }
        }
        self.push_op(v, Op::L2NormalizeRows(a.0, eps))
    }

    // ---- shape ops ----------------------------------------------------------

    /// Horizontal concatenation of several nodes.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "Tape::concat_cols: no parts");
        let mats: Vec<&Matrix> = parts.iter().map(|p| self.value(*p)).collect();
        let v = Matrix::hcat_all(&mats);
        self.push_op(v, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.value(a).slice_cols(start, end);
        self.push_op(v, Op::SliceCols(a.0, start, end))
    }

    /// Row gather: `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        let v = self.value(a).gather_rows(&idx);
        self.push_op(v, Op::GatherRows(a.0, idx))
    }

    /// Row scatter-add into `n_out` rows: `out[idx[i]] += a[i]`.
    pub fn scatter_add_rows(&mut self, a: Var, idx: Rc<Vec<usize>>, n_out: usize) -> Var {
        let v = self.value(a).scatter_add_rows(&idx, n_out);
        self.push_op(v, Op::ScatterAddRows(a.0, idx, n_out))
    }

    /// Segment softmax over edge rows grouped by `dst` (per column):
    /// the GAT attention primitive. `a` has one row per edge.
    pub fn edge_softmax(&mut self, a: Var, dst: Rc<Vec<usize>>) -> Var {
        let x = self.value(a);
        assert_eq!(x.rows(), dst.len(), "Tape::edge_softmax: {} edge rows vs {} destinations", x.rows(), dst.len());
        let n_segments = dst.iter().copied().max().map_or(0, |m| m + 1);
        let cols = x.cols();
        // Stable softmax per (segment, column).
        let mut seg_max = vec![f32::NEG_INFINITY; n_segments * cols];
        for (e, &d) in dst.iter().enumerate() {
            for c in 0..cols {
                let slot = &mut seg_max[d * cols + c];
                *slot = slot.max(x[(e, c)]);
            }
        }
        let mut v = Matrix::zeros(x.rows(), cols);
        let mut seg_sum = vec![0.0f32; n_segments * cols];
        for (e, &d) in dst.iter().enumerate() {
            for c in 0..cols {
                let ev = (x[(e, c)] - seg_max[d * cols + c]).exp();
                v[(e, c)] = ev;
                seg_sum[d * cols + c] += ev;
            }
        }
        for (e, &d) in dst.iter().enumerate() {
            for c in 0..cols {
                let s = seg_sum[d * cols + c];
                if s > 0.0 {
                    v[(e, c)] /= s;
                }
            }
        }
        self.push_op(v, Op::EdgeSoftmax(a.0, dst))
    }

    // ---- reductions ----------------------------------------------------------

    /// Sum of all elements (1×1).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(a).sum());
        self.push_op(v, Op::SumAll(a.0))
    }

    /// Mean of all elements (1×1).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(a).mean());
        self.push_op(v, Op::MeanAll(a.0))
    }

    /// Per-row sums (n×1).
    pub fn row_sum(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let v = Matrix::column((0..x.rows()).map(|i| x.row(i).iter().sum()).collect());
        self.push_op(v, Op::RowSum(a.0))
    }

    /// Per-column sums (1×m).
    pub fn col_sum(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut v = Matrix::zeros(1, x.cols());
        for i in 0..x.rows() {
            for (o, &t) in v.row_mut(0).iter_mut().zip(x.row(i)) {
                *o += t;
            }
        }
        self.push_op(v, Op::ColSum(a.0))
    }

    // ---- broadcasts ------------------------------------------------------------

    /// `a (n×m) ⊙ broadcast(b (n×1))` — per-row scaling, e.g. confidence
    /// weighting of entity embeddings.
    pub fn mul_broadcast_col(&mut self, a: Var, b: Var) -> Var {
        let (x, s) = (self.value(a), self.value(b));
        s.expect_shape(x.rows(), 1, "Tape::mul_broadcast_col: scale");
        let mut v = x.clone();
        for i in 0..v.rows() {
            let f = s[(i, 0)];
            for t in v.row_mut(i) {
                *t *= f;
            }
        }
        self.push_op(v, Op::MulBroadcastCol(a.0, b.0))
    }

    /// `a (n×m) ⊙ broadcast(b (1×m))` — per-column scaling, e.g. diagonal
    /// weight matrices.
    pub fn mul_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (x, s) = (self.value(a), self.value(b));
        s.expect_shape(1, x.cols(), "Tape::mul_broadcast_row: scale");
        let mut v = x.clone();
        for i in 0..v.rows() {
            for (t, &f) in v.row_mut(i).iter_mut().zip(s.row(0)) {
                *t *= f;
            }
        }
        self.push_op(v, Op::MulBroadcastRow(a.0, b.0))
    }

    /// `a (n×m) + broadcast(b (1×m))` — bias addition.
    pub fn add_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (x, s) = (self.value(a), self.value(b));
        s.expect_shape(1, x.cols(), "Tape::add_broadcast_row: bias");
        let mut v = x.clone();
        for i in 0..v.rows() {
            for (t, &f) in v.row_mut(i).iter_mut().zip(s.row(0)) {
                *t += f;
            }
        }
        self.push_op(v, Op::AddBroadcastRow(a.0, b.0))
    }

    // ---- fused losses -------------------------------------------------------------

    /// Fused softmax cross-entropy over rows: `mean_i(−log softmax(a)_{i, t_i})`.
    ///
    /// Numerically stable and with the exact `(softmax − onehot)/B` backward.
    ///
    /// # Panics
    /// Panics if a target is out of range or counts disagree.
    pub fn cross_entropy_rows(&mut self, a: Var, targets: Rc<Vec<usize>>) -> Var {
        let x = self.value(a);
        assert_eq!(x.rows(), targets.len(), "Tape::cross_entropy_rows: {} rows vs {} targets", x.rows(), targets.len());
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < x.cols(), "Tape::cross_entropy_rows: target {t} out of range ({} cols)", x.cols());
            let row = x.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            loss += (lse - row[t]) as f64;
        }
        let v = Matrix::full(1, 1, (loss / targets.len().max(1) as f64) as f32);
        self.push_op(v, Op::CrossEntropyRows(a.0, targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_matmul_chain() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let w = t.leaf(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let y = t.matmul(x, w);
        let loss = t.sum_all(y);
        t.backward(loss);
        // d(sum(XW))/dW = Xᵀ 1 = column sums of X broadcast
        assert_eq!(t.grad(w).expect("grad").as_slice(), &[4.0, 4.0, 6.0, 6.0]);
        assert_eq!(t.grad(x).expect("grad").as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 2, 1.0));
        let c = t.constant(Matrix::full(1, 2, 3.0));
        let y = t.mul(x, c);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert_eq!(t.grad(x).expect("grad").as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn gradient_accumulates_over_shared_use() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 1, 2.0));
        let y = t.mul(x, x); // x²
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).expect("grad")[(0, 0)], 4.0); // 2x
    }

    #[test]
    #[should_panic(expected = "loss must be 1x1")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut t = Tape::new();
        let logits = t.leaf(Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]));
        let loss = t.cross_entropy_rows(logits, Rc::new(vec![0, 1]));
        let expect = ((1.0f32 + (-2.0f32).exp()).ln() + (1.0f32 + (-1.0f32).exp()).ln()) / 2.0;
        assert!((t.value(loss)[(0, 0)] - expect).abs() < 1e-5);
        t.backward(loss);
        let g = t.grad(logits).expect("grad");
        // Row sums of (softmax − onehot) are zero.
        assert!(g.row(0).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn shared_workspace_reuses_buffers_bit_identically() {
        // The same step run on a cold private workspace and on a warm
        // shared one must produce bit-equal gradients, and the warm run
        // must allocate nothing new.
        let step = |tape: &mut Tape| -> Vec<u32> {
            let x = tape.leaf(Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]));
            let w = tape.leaf(Matrix::from_rows(&[&[0.25, 1.0], &[-1.5, 2.0]]));
            let y = tape.matmul(x, w);
            let r = tape.relu(y);
            let loss = tape.sum_all(r);
            tape.backward(loss);
            let mut bits: Vec<u32> = Vec::new();
            for v in [x, w] {
                bits.extend(tape.grad(v).expect("grad").as_slice().iter().map(|f| f.to_bits()));
            }
            bits
        };
        let cold = step(&mut Tape::new());

        let ws = crate::workspace::shared_workspace();
        {
            let mut warmup = Tape::with_workspace(Rc::clone(&ws));
            step(&mut warmup);
        } // drop recycles the warmup step's gradient buffers
        let fresh_after_warmup = ws.borrow().stats().fresh;
        assert!(fresh_after_warmup > 0);

        let mut warm = Tape::with_workspace(Rc::clone(&ws));
        let warm_bits = step(&mut warm);
        let stats = ws.borrow().stats();
        assert_eq!(stats.fresh, fresh_after_warmup, "steady-state step allocated fresh buffers");
        assert!(stats.reused >= fresh_after_warmup, "pool served too few allocations");
        assert_eq!(warm_bits, cold, "workspace reuse changed gradient bits");
    }

    #[test]
    fn edge_softmax_normalizes_per_segment() {
        let mut t = Tape::new();
        let logits = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[0.0]]));
        let dst = Rc::new(vec![0, 0, 1, 1]);
        let sm = t.edge_softmax(logits, dst);
        let v = t.value(sm);
        assert!((v[(0, 0)] + v[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((v[(2, 0)] + v[(3, 0)] - 1.0).abs() < 1e-6);
        assert!(v[(1, 0)] > v[(0, 0)]);
    }
}
