//! Deterministic, schedule-driven fault injection for the I/O plane.
//!
//! A **failpoint** is a named site in production code — `atomicio.write`,
//! `shard.read`, `serve.engine`, … — where a fault *may* be injected. With
//! no schedule installed every site is a no-op behind one relaxed atomic
//! load, so the instrumented binaries are the shipping binaries; the
//! chaos harness (`chaos_bench`, the `faults.rs` test suites, ci.sh)
//! installs a schedule and replays the exact same fault sequence on every
//! run.
//!
//! # Schedule grammar
//!
//! A schedule is a `;`-separated list of entries, each
//! `site=action[@trigger]`, read from the `DESALIGN_FAILPOINTS`
//! environment variable on first evaluation or installed programmatically
//! with [`install`]:
//!
//! ```text
//! atomicio.write=torn:10@1;serve.engine=err@3~6;serve.read=timeout@p0.25
//! ```
//!
//! Actions:
//!
//! | action | fault |
//! |---|---|
//! | `err` | `io::ErrorKind::Other` ("injected fault") |
//! | `notfound` | `io::ErrorKind::NotFound` |
//! | `wouldblock` | `io::ErrorKind::WouldBlock` (socket reads treat this as a timeout) |
//! | `timeout` | `io::ErrorKind::TimedOut` |
//! | `interrupted` | `io::ErrorKind::Interrupted` |
//! | `delay:<ms>` | sleep `<ms>` milliseconds, then proceed normally |
//! | `torn:<n>` | torn write: the site persists only the first `<n>` payload bytes, then fails (only write sites interpret the byte budget; elsewhere it degrades to `err`) |
//!
//! Triggers (hit counts are per-site, 1-based, counted across the whole
//! process lifetime — or since the last [`install`]/[`clear`]):
//!
//! | trigger | fires on |
//! |---|---|
//! | *(omitted)* | every hit |
//! | `@k` | exactly the k-th hit |
//! | `@k+` | the k-th hit and every one after |
//! | `@k~m` | hits k through m inclusive |
//! | `@%k` | every k-th hit (k, 2k, 3k, …) |
//! | `@p<f>` | seeded pseudo-random: probability `f ∈ [0,1]` per hit, deterministic in (site, hit index, schedule seed) |
//!
//! # Determinism
//!
//! Within one thread of execution a schedule replays exactly: hit counts
//! advance one per evaluation and `@p` draws hash the (site, hit, seed)
//! triple — no global RNG, no wall clock. Under concurrency the *set* of
//! fired faults is still exact (hit counters are atomic), but which
//! request observes the k-th hit is scheduling-dependent; chaos assertions
//! should therefore be aggregate (counts, zero panics, well-formed
//! responses), not per-request.
//!
//! # Zero-cost when off
//!
//! [`evaluate`] first checks one process-global atomic; with
//! `DESALIGN_FAILPOINTS` unset (or empty) that check is the *entire* cost
//! and no site ever perturbs behaviour. ci.sh pins this with a
//! fingerprint gate: the end-to-end training fingerprint with
//! `DESALIGN_FAILPOINTS=""` must equal the run without the variable.
//!
//! ```
//! use desalign_failpoint as failpoint;
//!
//! let _guard = failpoint::exclusive(); // schedules are process-global
//! failpoint::install("doc.site=err@2").unwrap();
//! assert!(failpoint::fail_io("doc.site").is_ok());  // hit 1: no fault
//! assert!(failpoint::fail_io("doc.site").is_err()); // hit 2: fires
//! assert!(failpoint::fail_io("doc.site").is_ok());  // hit 3: no fault
//! failpoint::clear();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

/// The environment variable holding the schedule.
pub const ENV_SCHEDULE: &str = "DESALIGN_FAILPOINTS";

/// The environment variable seeding `@p` probabilistic triggers.
pub const ENV_SEED: &str = "DESALIGN_FAILPOINTS_SEED";

// ---------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------

/// The fault a fired failpoint asks the site to inject.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Return an `io::Error` of this kind.
    Err(io::ErrorKind),
    /// Sleep for this long, then proceed normally.
    Delay(Duration),
    /// Torn write: persist only the first `n` payload bytes, then fail.
    /// Sites that do not write bytes treat this as [`FaultAction::Err`].
    Torn(usize),
}

/// One fired fault, as returned by [`evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct Fault {
    /// What to inject.
    pub action: FaultAction,
}

impl Fault {
    /// The `io::Error` this fault maps to (for [`FaultAction::Delay`] the
    /// caller should sleep instead; see [`fail_io`]).
    pub fn to_io_error(&self, site: &str) -> io::Error {
        let kind = match self.action {
            FaultAction::Err(kind) => kind,
            FaultAction::Delay(_) => io::ErrorKind::Other,
            FaultAction::Torn(_) => io::ErrorKind::Interrupted,
        };
        io::Error::new(kind, format!("injected fault at failpoint '{site}'"))
    }
}

// ---------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Trigger {
    Always,
    Hit(u64),
    From(u64),
    Range(u64, u64),
    Every(u64),
    Prob(f64),
}

impl Trigger {
    fn fires(&self, site: &str, hit: u64, seed: u64) -> bool {
        match *self {
            Trigger::Always => true,
            Trigger::Hit(k) => hit == k,
            Trigger::From(k) => hit >= k,
            Trigger::Range(k, m) => hit >= k && hit <= m,
            Trigger::Every(k) => k > 0 && hit % k == 0,
            Trigger::Prob(p) => {
                let h = splitmix(fnv64(site.as_bytes()) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
                (h >> 11) as f64 / (1u64 << 53) as f64 % 1.0 < p
            }
        }
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Schedule + registry
// ---------------------------------------------------------------------

#[derive(Debug)]
struct SiteRule {
    site: String,
    action: FaultAction,
    trigger: Trigger,
    hits: AtomicU64,
    fired: AtomicU64,
}

#[derive(Debug, Default)]
struct Schedule {
    rules: Vec<SiteRule>,
    seed: u64,
}

/// Process-global activation state: 0 = uninitialized (read env on first
/// evaluation), 1 = inactive (fast no-op path), 2 = active.
static STATE: AtomicU8 = AtomicU8::new(0);
static REGISTRY: RwLock<Option<Schedule>> = RwLock::new(None);
static EVALS: AtomicU64 = AtomicU64::new(0);
static FIRED: AtomicU64 = AtomicU64::new(0);

fn parse_action(spec: &str) -> Result<FaultAction, String> {
    if let Some(ms) = spec.strip_prefix("delay:") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad delay milliseconds '{ms}'"))?;
        return Ok(FaultAction::Delay(Duration::from_millis(ms)));
    }
    if let Some(n) = spec.strip_prefix("torn:") {
        let n: usize = n.parse().map_err(|_| format!("bad torn byte budget '{n}'"))?;
        return Ok(FaultAction::Torn(n));
    }
    match spec {
        "err" => Ok(FaultAction::Err(io::ErrorKind::Other)),
        "notfound" => Ok(FaultAction::Err(io::ErrorKind::NotFound)),
        "wouldblock" => Ok(FaultAction::Err(io::ErrorKind::WouldBlock)),
        "timeout" => Ok(FaultAction::Err(io::ErrorKind::TimedOut)),
        "interrupted" => Ok(FaultAction::Err(io::ErrorKind::Interrupted)),
        other => Err(format!("unknown action '{other}' (err|notfound|wouldblock|timeout|interrupted|delay:<ms>|torn:<n>)")),
    }
}

fn parse_trigger(spec: &str) -> Result<Trigger, String> {
    if spec.is_empty() {
        return Ok(Trigger::Always);
    }
    if let Some(p) = spec.strip_prefix('p') {
        let p: f64 = p.parse().map_err(|_| format!("bad probability '{p}'"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        return Ok(Trigger::Prob(p));
    }
    if let Some(k) = spec.strip_prefix('%') {
        let k: u64 = k.parse().map_err(|_| format!("bad period '{k}'"))?;
        if k == 0 {
            return Err("period must be ≥ 1".into());
        }
        return Ok(Trigger::Every(k));
    }
    if let Some(k) = spec.strip_suffix('+') {
        let k: u64 = k.parse().map_err(|_| format!("bad hit index '{k}'"))?;
        return Ok(Trigger::From(k));
    }
    if let Some((k, m)) = spec.split_once('~') {
        let k: u64 = k.parse().map_err(|_| format!("bad range start '{k}'"))?;
        let m: u64 = m.parse().map_err(|_| format!("bad range end '{m}'"))?;
        if m < k {
            return Err(format!("empty hit range {k}~{m}"));
        }
        return Ok(Trigger::Range(k, m));
    }
    let k: u64 = spec.parse().map_err(|_| format!("bad trigger '{spec}'"))?;
    Ok(Trigger::Hit(k))
}

fn parse_schedule(text: &str, seed: u64) -> Result<Schedule, String> {
    let mut rules = Vec::new();
    for entry in text.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, spec) = entry.split_once('=').ok_or_else(|| format!("entry '{entry}' is not site=action[@trigger]"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("entry '{entry}' has an empty site name"));
        }
        let (action, trigger) = match spec.split_once('@') {
            Some((a, t)) => (parse_action(a.trim())?, parse_trigger(t.trim())?),
            None => (parse_action(spec.trim())?, Trigger::Always),
        };
        rules.push(SiteRule {
            site: site.to_string(),
            action,
            trigger,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
    }
    Ok(Schedule { rules, seed })
}

fn init_from_env() -> u8 {
    let seed = std::env::var(ENV_SEED).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(0u64);
    match std::env::var(ENV_SCHEDULE) {
        Ok(text) if !text.trim().is_empty() => match parse_schedule(&text, seed) {
            Ok(schedule) => {
                *REGISTRY.write().expect("failpoint registry") = Some(schedule);
                2
            }
            Err(e) => {
                // A malformed schedule must be loud, not silently inert:
                // the whole point is deterministic replay.
                panic!("{ENV_SCHEDULE} is malformed: {e}");
            }
        },
        _ => 1,
    }
}

fn state() -> u8 {
    let s = STATE.load(Ordering::Acquire);
    if s != 0 {
        return s;
    }
    let s = init_from_env();
    // Another thread may have raced the env read; both computed the same
    // answer from the same environment, so either store wins.
    STATE.store(s, Ordering::Release);
    s
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Installs a schedule programmatically (tests, `chaos_bench`),
/// replacing any active one and resetting every per-site hit counter.
///
/// Schedules are process-global: concurrent tests must serialize through
/// [`exclusive`].
///
/// # Errors
/// A human-readable description of the first malformed entry.
pub fn install(schedule: &str) -> Result<(), String> {
    install_seeded(schedule, 0)
}

/// [`install`] with an explicit seed for `@p` probabilistic triggers.
///
/// # Errors
/// A human-readable description of the first malformed entry.
pub fn install_seeded(schedule: &str, seed: u64) -> Result<(), String> {
    let parsed = parse_schedule(schedule, seed)?;
    let active = !parsed.rules.is_empty();
    *REGISTRY.write().expect("failpoint registry") = Some(parsed);
    STATE.store(if active { 2 } else { 1 }, Ordering::Release);
    Ok(())
}

/// Removes any active schedule: every site returns to the no-op fast
/// path. (The `DESALIGN_FAILPOINTS` environment variable is *not*
/// re-read after a `clear`.)
pub fn clear() {
    *REGISTRY.write().expect("failpoint registry") = None;
    STATE.store(1, Ordering::Release);
}

/// Whether any schedule is active.
pub fn active() -> bool {
    state() == 2
}

/// Serializes tests that install process-global schedules. Hold the
/// returned guard for the duration of the scheduled section.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Evaluates the failpoint named `site`: counts the hit and returns the
/// fault to inject, or `None`. With no schedule active this is one
/// relaxed atomic load.
#[inline]
pub fn evaluate(site: &str) -> Option<Fault> {
    if state() != 2 {
        return None;
    }
    evaluate_slow(site)
}

#[inline(never)]
fn evaluate_slow(site: &str) -> Option<Fault> {
    let registry = REGISTRY.read().expect("failpoint registry");
    let schedule = registry.as_ref()?;
    let mut fault = None;
    for rule in schedule.rules.iter().filter(|r| r.site == site) {
        EVALS.fetch_add(1, Ordering::Relaxed);
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if fault.is_none() && rule.trigger.fires(site, hit, schedule.seed) {
            rule.fired.fetch_add(1, Ordering::Relaxed);
            FIRED.fetch_add(1, Ordering::Relaxed);
            fault = Some(Fault { action: rule.action.clone() });
        }
    }
    fault
}

/// The common I/O-site shape: sleeps through [`FaultAction::Delay`]
/// faults and returns the injected `io::Error` for everything else.
/// Sites that interpret [`FaultAction::Torn`] byte budgets should call
/// [`evaluate`] directly.
#[inline]
pub fn fail_io(site: &str) -> io::Result<()> {
    match evaluate(site) {
        None => Ok(()),
        Some(fault) => match fault.action {
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            _ => Err(fault.to_io_error(site)),
        },
    }
}

/// Counter snapshot for `/metrics`: the aggregate
/// `failpoint.evals` / `failpoint.fired` pair (always present, zero when
/// no schedule ever fired) plus one `failpoint.fired.<site>` entry per
/// scheduled site.
pub fn counters() -> Vec<(String, u64)> {
    let mut out = vec![
        ("failpoint.evals".to_string(), EVALS.load(Ordering::Relaxed)),
        ("failpoint.fired".to_string(), FIRED.load(Ordering::Relaxed)),
    ];
    if let Some(schedule) = REGISTRY.read().expect("failpoint registry").as_ref() {
        for rule in &schedule.rules {
            out.push((format!("failpoint.fired.{}", rule.site), rule.fired.load(Ordering::Relaxed)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_schedule_is_a_no_op() {
        let _guard = exclusive();
        clear();
        assert!(!active());
        assert!(evaluate("nowhere").is_none());
        assert!(fail_io("nowhere").is_ok());
    }

    #[test]
    fn hit_trigger_fires_exactly_once() {
        let _guard = exclusive();
        install("t.hit=err@2").unwrap();
        assert!(fail_io("t.hit").is_ok());
        let err = fail_io("t.hit").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("t.hit"));
        for _ in 0..5 {
            assert!(fail_io("t.hit").is_ok());
        }
        clear();
    }

    #[test]
    fn range_from_and_every_triggers() {
        let _guard = exclusive();
        install("t.range=err@2~3;t.from=err@3+;t.every=err@%2").unwrap();
        let fires = |site: &str, n: usize| (0..n).map(|_| fail_io(site).is_err()).collect::<Vec<_>>();
        assert_eq!(fires("t.range", 4), vec![false, true, true, false]);
        assert_eq!(fires("t.from", 4), vec![false, false, true, true]);
        assert_eq!(fires("t.every", 4), vec![false, true, false, true]);
        clear();
    }

    #[test]
    fn probabilistic_trigger_is_seeded_and_deterministic() {
        let _guard = exclusive();
        let draw = |seed: u64| -> Vec<bool> {
            install_seeded("t.prob=err@p0.5", seed).unwrap();
            (0..64).map(|_| fail_io("t.prob").is_err()).collect()
        };
        let a = draw(7);
        let b = draw(7);
        let c = draw(8);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert_ne!(a, c, "different seeds should differ (64 draws at p=0.5)");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "p=0.5 fired {fired}/64 times");
        clear();
    }

    #[test]
    fn kinds_map_to_io_error_kinds() {
        let _guard = exclusive();
        install("t.nf=notfound;t.wb=wouldblock;t.to=timeout;t.ir=interrupted").unwrap();
        assert_eq!(fail_io("t.nf").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(fail_io("t.wb").unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(fail_io("t.to").unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(fail_io("t.ir").unwrap_err().kind(), io::ErrorKind::Interrupted);
        clear();
    }

    #[test]
    fn delay_sleeps_and_proceeds() {
        let _guard = exclusive();
        install("t.delay=delay:20@1").unwrap();
        let t0 = std::time::Instant::now();
        assert!(fail_io("t.delay").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(fail_io("t.delay").is_ok());
        clear();
    }

    #[test]
    fn torn_carries_its_byte_budget() {
        let _guard = exclusive();
        install("t.torn=torn:10").unwrap();
        match evaluate("t.torn") {
            Some(Fault { action: FaultAction::Torn(10) }) => {}
            other => panic!("expected Torn(10), got {other:?}"),
        }
        // fail_io degrades torn to an Interrupted error for non-write sites.
        assert_eq!(fail_io("t.torn").unwrap_err().kind(), io::ErrorKind::Interrupted);
        clear();
    }

    #[test]
    fn counters_track_evals_and_fires_per_site() {
        let _guard = exclusive();
        install("t.cnt=err@1").unwrap();
        let _ = fail_io("t.cnt");
        let _ = fail_io("t.cnt");
        let snapshot = counters();
        let get = |name: &str| snapshot.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert!(get("failpoint.evals").unwrap() >= 2);
        assert!(get("failpoint.fired").unwrap() >= 1);
        assert_eq!(get("failpoint.fired.t.cnt"), Some(1));
        clear();
        let after = counters();
        assert!(after.iter().any(|(n, _)| n == "failpoint.evals"), "aggregates survive clear()");
        assert!(!after.iter().any(|(n, _)| n == "failpoint.fired.t.cnt"));
    }

    #[test]
    fn malformed_schedules_are_rejected_with_context() {
        let _guard = exclusive();
        for bad in ["nosite", "s=warp", "s=err@0x", "s=err@p2", "s=err@5~2", "s=delay:x", "s=err@%0"] {
            let err = install(bad).unwrap_err();
            assert!(!err.is_empty(), "'{bad}' accepted");
        }
        // install() failure leaves the previous state untouched.
        install("t.ok=err@1").unwrap();
        assert!(install("broken").is_err());
        assert!(fail_io("t.ok").is_err(), "failed install clobbered the active schedule");
        clear();
    }

    #[test]
    fn multiple_rules_for_one_site_all_count_hits() {
        let _guard = exclusive();
        install("t.multi=delay:0@1;t.multi=err@2").unwrap();
        assert!(fail_io("t.multi").is_ok()); // delay fires (0ms), err does not
        assert!(fail_io("t.multi").is_err()); // err fires on its hit 2
        clear();
    }

    #[test]
    fn empty_schedule_installs_as_inactive() {
        let _guard = exclusive();
        install("").unwrap();
        assert!(!active());
        install("  ;  ").unwrap();
        assert!(!active());
        clear();
    }
}
