//! End-to-end contract tests for the streaming data plane
//! (`docs/DATA_FORMAT.md`): shard round-trips, hostile-byte sweeps, and
//! repair equivalence between the streaming and in-memory auditors.
//!
//! The invariants:
//!
//! 1. **Round trip** — write → stream-audit (no-op) → assemble is
//!    fingerprint-identical to the in-memory dataset, across presets,
//!    seeds, and shard sizes.
//! 2. **No panics on hostile bytes** — any byte-level damage to a shard
//!    file (mutation or truncation) surfaces as a typed error or a
//!    quarantine, never a panic.
//! 3. **Quarantine isolation** — a destroyed shard is quarantined without
//!    touching the healthy shards' bytes.
//! 4. **Repair equivalence** — streaming-repairing a sharded corrupted
//!    dataset assembles to the same fingerprint the in-memory repair
//!    produces on the same corrupted dataset.

use desalign_mmkg::{
    dataset_fingerprint, read_manifest, read_shard, shard_file_name, write_shards, AuditPolicy, DatasetSpec,
    StreamingAuditor, SynthConfig,
};
use desalign_testkit::{check, corrupt_dataset, corrupt_file, ensure, ensure_eq, CorruptionKind, SliceRandom};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("desalign-shard-stream-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

#[test]
fn round_trip_matches_in_memory_across_presets() {
    check(
        "shard_round_trip",
        8,
        |rng| {
            let spec = *DatasetSpec::ALL.choose(rng).expect("non-empty preset list");
            (spec, rng.gen_range(40..100usize), rng.gen_range(0..1000u64), rng.gen_range(13..80usize))
        },
        |&(spec, scale, seed, shard_entities)| {
            let ds = SynthConfig::preset(spec).scaled(scale).generate(seed);
            let dir = temp_dir(&format!("rt-{seed}-{scale}-{shard_entities}"));
            let manifest = write_shards(&ds, &dir, shard_entities).map_err(|e| format!("write: {e}"))?;
            ensure!(manifest.shards.len() >= 1, "at least one shard");

            // A clean directory stream-audits clean under both policies.
            let strict = StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir).map_err(|e| format!("strict: {e}"))?;
            ensure!(strict.audit.is_clean(), "clean shards must strict-audit clean: {}", strict.audit.summary());
            let report = StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir).map_err(|e| format!("repair: {e}"))?;
            ensure!(report.quarantined.is_empty(), "no quarantine on clean data");
            ensure_eq!(report.shards_rewritten, 0);

            // Assembly is bit-identical to the in-memory dataset.
            let assembled = manifest.to_dataset(&dir).map_err(|e| format!("assemble: {e}"))?;
            ensure_eq!(dataset_fingerprint(&assembled), dataset_fingerprint(&ds));
            ensure_eq!(assembled.source.rel_triples, ds.source.rel_triples);
            ensure_eq!(assembled.target.images, ds.target.images);
            ensure_eq!(assembled.train_pairs, ds.train_pairs);
            ensure_eq!(assembled.test_pairs, ds.test_pairs);
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}

#[test]
fn hostile_shard_mutations_never_panic() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(70).generate(17);
    let dir = temp_dir("hostile");
    let manifest = write_shards(&ds, &dir, 25).expect("write");
    let shard0 = dir.join(shard_file_name(0));
    let pristine = std::fs::read(&shard0).expect("read shard");

    check(
        "hostile_shard_mutations",
        48,
        |rng| (rng.gen_range(1..12usize), rng.next_u64()),
        |&(mutations, seed)| {
            std::fs::write(&shard0, &pristine).map_err(|e| e.to_string())?;
            corrupt_file(&shard0, mutations, seed).map_err(|e| e.to_string())?;
            let changed = std::fs::read(&shard0).map_err(|e| e.to_string())? != pristine;

            // Reading the damaged shard must return Ok or a typed error —
            // never panic (the harness catches panics as failures).
            let direct = read_shard(&shard0);
            // Strict streaming audit: ok or typed error.
            let strict = StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir);
            if changed && direct.is_ok() && strict.is_ok() {
                // Mutations that dodge the checksum entirely (e.g. inside
                // slack the frame ignores) are impossible: the FNV frame
                // covers every payload byte, so a changed file that still
                // reads back clean means the mutation hit outside the
                // payload but preserved the footer — reject that case.
                ensure!(
                    std::fs::read(&shard0).map_err(|e| e.to_string())?.len() != pristine.len(),
                    "a changed same-length shard must fail its checksum"
                );
            }
            // Repair streaming audit: must not panic; damaged shard either
            // repairs (impossible for frame damage — rewrite only happens
            // for semantic defects) or lands in quarantine.
            let repair = StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir);
            if let Ok(rep) = &repair {
                if direct.is_err() {
                    ensure_eq!(rep.quarantined, vec![0usize]);
                }
            }
            Ok(())
        },
    );

    // Restore and confirm the directory still works end to end.
    std::fs::write(&shard0, &pristine).expect("restore");
    // The audit may have rewritten the manifest while shard 0 was
    // quarantined; rebuild it to the pristine state for the final check.
    let assembled = {
        let report = StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir);
        match report {
            Ok(_) => read_manifest(&dir).expect("manifest").to_dataset(&dir).expect("assemble"),
            Err(_) => {
                // Manifest was updated during a quarantined repair pass;
                // re-shard from the source of truth.
                std::fs::remove_dir_all(&dir).ok();
                let dir2 = temp_dir("hostile");
                write_shards(&ds, &dir2, 25).expect("rewrite").to_dataset(&dir2).expect("assemble")
            }
        }
    };
    assert_eq!(dataset_fingerprint(&assembled), manifest.dataset_fingerprint);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_sweep_never_panics() {
    let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(50).generate(23);
    let dir = temp_dir("trunc");
    write_shards(&ds, &dir, 30).expect("write");
    let shard1 = dir.join(shard_file_name(1));
    let pristine = std::fs::read(&shard1).expect("read shard");
    let len = pristine.len();

    // Sweep truncation points: dense near the ends (header and footer are
    // the most structurally sensitive), strided through the middle.
    let mut cuts: Vec<usize> = (0..len.min(128)).collect();
    cuts.extend((len.saturating_sub(128)..len).collect::<Vec<_>>());
    cuts.extend((0..len).step_by((len / 200).max(1)));
    cuts.sort_unstable();
    cuts.dedup();
    for &keep in &cuts {
        std::fs::write(&shard1, &pristine[..keep]).expect("truncate");
        let r = read_shard(&shard1);
        assert!(r.is_err(), "a truncated shard ({keep}/{len} bytes) must fail verification");
        let strict = StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir);
        assert!(strict.is_err(), "strict audit must reject a truncated shard ({keep}/{len} bytes)");
    }
    std::fs::write(&shard1, &pristine).expect("restore");
    assert!(StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_isolates_the_damaged_shard() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(90).generate(29);
    let dir = temp_dir("quarantine");
    let manifest = write_shards(&ds, &dir, 20).expect("write");
    assert!(manifest.shards.len() >= 3, "need several shards for isolation");
    let victim = 1usize;
    let before: Vec<Vec<u8>> = manifest
        .shards
        .iter()
        .map(|m| std::fs::read(dir.join(&m.file)).expect("read"))
        .collect();

    // Destroy one shard beyond repair.
    std::fs::write(dir.join(shard_file_name(victim)), b"not a shard at all").expect("damage");

    let report = StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir).expect("repair audit runs");
    assert_eq!(report.quarantined, vec![victim], "exactly the damaged shard is quarantined");

    // Healthy shards' bytes are untouched.
    for (k, m) in manifest.shards.iter().enumerate() {
        if k == victim {
            continue;
        }
        let after = std::fs::read(dir.join(&m.file)).expect("read");
        assert_eq!(after, before[k], "healthy shard {k} must not be rewritten by a quarantining audit");
    }

    // Assembly refuses: the dataset cannot be reconstructed without the
    // quarantined shard.
    let manifest_now = read_manifest(&dir).expect("manifest still reads");
    assert!(manifest_now.to_dataset(&dir).is_err(), "assembly must fail with a quarantined shard");

    // Strict fails fast on the same directory.
    assert!(StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_repair_matches_in_memory_repair() {
    check(
        "streaming_repair_equivalence",
        10,
        |rng| {
            let kind = *CorruptionKind::ALL.choose(rng).expect("non-empty kind list");
            (kind, rng.gen_range(40..90usize), rng.gen_range(0.05f32..0.5), rng.gen_range(0..10_000u64))
        },
        |&(kind, scale, severity, seed)| {
            let mut ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(scale).generate(seed);
            let applied = corrupt_dataset(&mut ds, kind, severity, seed);
            ensure!(applied > 0, "{} applied nothing", kind.name());

            // Stream side: shard the *corrupted* dataset, repair it
            // shard-by-shard, assemble.
            let dir = temp_dir(&format!("eq-{seed}-{scale}"));
            write_shards(&ds, &dir, 23).map_err(|e| format!("write: {e}"))?;
            let report =
                StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir).map_err(|e| format!("stream repair: {e}"))?;
            ensure!(report.quarantined.is_empty(), "semantic defects must repair, not quarantine");
            let assembled = read_manifest(&dir)
                .map_err(|e| format!("manifest: {e}"))?
                .to_dataset(&dir)
                .map_err(|e| format!("assemble: {e}"))?;

            // Memory side: the established in-memory repair.
            let mem_report = ds.audit(AuditPolicy::Repair).map_err(|e| format!("mem repair: {e}"))?;

            ensure_eq!(dataset_fingerprint(&assembled), dataset_fingerprint(&ds));
            if !kind.is_degradation() {
                ensure!(report.audit.total_defects() > 0, "{} invisible to the streaming audit", kind.name());
                ensure!(mem_report.total_defects() > 0);
            }
            // Both repaired datasets pass strict.
            assembled.clone().audit(AuditPolicy::Strict).map_err(|e| format!("assembled fails strict: {e}"))?;
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}

#[test]
fn generator_streamed_equals_in_memory_across_presets() {
    check(
        "generate_sharded_equivalence",
        6,
        |rng| {
            let spec = *DatasetSpec::ALL.choose(rng).expect("non-empty preset list");
            (spec, rng.gen_range(40..90usize), rng.gen_range(0..500u64), rng.gen_range(17..60usize))
        },
        |&(spec, scale, seed, shard_entities)| {
            let cfg = SynthConfig::preset(spec).scaled(scale);
            let ds = cfg.generate(seed);
            let dir = temp_dir(&format!("gen-{seed}-{scale}"));
            let manifest =
                cfg.generate_sharded(seed, &dir, shard_entities).map_err(|e| format!("generate_sharded: {e}"))?;
            ensure_eq!(manifest.dataset_fingerprint, dataset_fingerprint(&ds));
            let assembled = manifest.to_dataset(&dir).map_err(|e| format!("assemble: {e}"))?;
            ensure_eq!(dataset_fingerprint(&assembled), dataset_fingerprint(&ds));
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}

/// The minimal dataset of `docs/DATA_FORMAT.md` §"Worked example": two
/// source entities (one with a 2-dim image), one target entity, one
/// relation triple, one attribute triple, one train and one test pair.
fn worked_example_dataset() -> desalign_mmkg::AlignmentDataset {
    desalign_mmkg::AlignmentDataset {
        name: "tiny".to_string(),
        source: desalign_mmkg::Mmkg {
            num_entities: 2,
            num_relations: 1,
            num_attributes: 1,
            rel_triples: vec![(0, 0, 1)],
            attr_triples: vec![(1, 0)],
            images: vec![Some(vec![1.0, -2.0]), None],
        },
        target: desalign_mmkg::Mmkg {
            num_entities: 1,
            num_relations: 1,
            num_attributes: 1,
            rel_triples: vec![],
            attr_triples: vec![],
            images: vec![None],
        },
        train_pairs: vec![(0, 0)],
        test_pairs: vec![(1, 0)],
    }
}

/// Pins the worked hexdump of `docs/DATA_FORMAT.md` byte for byte: if the
/// writer ever produces different bytes for the example dataset, the doc
/// is stale and this test fails before the doc misleads anyone.
#[test]
fn data_format_worked_example_is_byte_exact() {
    // Concatenation of the annotated hexdump in docs/DATA_FORMAT.md.
    const DOC_HEX: &str = concat!(
        // header: magic + 11 × u64 LE
        "4453484152443031",                 // "DSHARD01"
        "0000000000000000",                 // index        = 0
        "0000000000000000", "0200000000000000", // src range [0, 2)
        "0000000000000000", "0100000000000000", // tgt range [0, 1)
        "0100000000000000",                 // n_src_rel    = 1
        "0100000000000000",                 // n_src_attr   = 1
        "0000000000000000",                 // n_tgt_rel    = 0
        "0000000000000000",                 // n_tgt_attr   = 0
        "0100000000000000",                 // n_train      = 1
        "0100000000000000",                 // n_test       = 1
        // src rel: (orig 0, (h 0, r 0, t 1))
        "000000000000000000000000000000000000000000000000",
        "0100000000000000",
        // src attr: (orig 0, (e 1, a 0))
        "00000000000000000100000000000000",
        "0000000000000000",
        // src images: entity 0 present, dim 2, [1.0, -2.0]; entity 1 absent
        "01", "02000000", "0000803f", "000000c0", "00",
        // tgt images: entity 0 absent
        "00",
        // train pair: (orig 0, (s 0, t 0))
        "000000000000000000000000000000000000000000000000",
        // test pair: (orig 0, (s 1, t 0))
        "000000000000000001000000000000000000000000000000",
        // atomicio footer: payload len 215, FNV-64, "DESACKPT"
        "d700000000000000", "e21a773c78ed1bab", "44455341434b5054",
    );
    let ds = worked_example_dataset();
    let dir = temp_dir("worked-example");
    let manifest = write_shards(&ds, &dir, 2).expect("write");
    assert_eq!(manifest.shards.len(), 1);
    assert_eq!(manifest.shards[0].payload_len, 215);
    assert_eq!(manifest.shards[0].checksum, 0xab1bed783c771ae2);
    assert_eq!(manifest.dataset_fingerprint, 0xf7d5d362c8675468);
    let bytes = std::fs::read(dir.join(&manifest.shards[0].file)).expect("read file");
    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, DOC_HEX, "shard bytes diverge from the docs/DATA_FORMAT.md worked example");
    std::fs::remove_dir_all(&dir).ok();
}
