//! Property tests for the synthetic benchmark generator: every generated
//! split must satisfy the dataset invariants regardless of preset, scale,
//! ratio knobs, or seed.

use desalign_mmkg::{DatasetSpec, FeatureDims, ModalFeatures, SynthConfig};
use proptest::prelude::*;

fn preset_strategy() -> impl Strategy<Value = DatasetSpec> {
    prop_oneof![
        Just(DatasetSpec::FbDb15k),
        Just(DatasetSpec::FbYg15k),
        Just(DatasetSpec::Dbp15kZhEn),
        Just(DatasetSpec::Dbp15kJaEn),
        Just(DatasetSpec::Dbp15kFrEn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_always_validate(
        spec in preset_strategy(),
        scale in 30usize..120,
        seed in 0u64..10_000,
        r_seed in 0.05f32..0.9,
    ) {
        let ds = SynthConfig::preset(spec).scaled(scale).with_seed_ratio(r_seed).generate(seed);
        prop_assert_eq!(ds.validate(), Ok(()));
        prop_assert!(ds.num_pairs() > 0);
        prop_assert!((ds.seed_ratio() - r_seed).abs() < 0.15);
    }

    #[test]
    fn ratio_overrides_bound_coverage(
        spec in preset_strategy(),
        seed in 0u64..1000,
        r in 0.05f32..0.95,
    ) {
        let ds = SynthConfig::preset(spec).scaled(80).with_image_ratio(r).with_text_ratio(r).generate(seed);
        let img_cov = ds.source.num_images() as f32 / ds.source.num_entities as f32;
        prop_assert!((img_cov - r).abs() < 0.1, "image coverage {} vs requested {}", img_cov, r);
        let tex_cov = ds.source.entities_with_attributes().iter().filter(|&&b| b).count() as f32
            / ds.source.num_entities as f32;
        prop_assert!(tex_cov <= r + 0.1, "text coverage {} exceeds requested {}", tex_cov, r);
    }

    #[test]
    fn feature_matrices_are_finite_and_shaped(
        spec in preset_strategy(),
        seed in 0u64..1000,
    ) {
        let ds = SynthConfig::preset(spec).scaled(60).generate(seed);
        let dims = FeatureDims { relation: 32, attribute: 32, visual: 64 };
        for kg in [&ds.source, &ds.target] {
            let f = ModalFeatures::build(kg, &dims);
            prop_assert_eq!(f.num_entities(), kg.num_entities);
            prop_assert!(f.relation.all_finite());
            prop_assert!(f.attribute.all_finite());
            prop_assert!(f.visual.all_finite());
            // Presence masks must be consistent with the raw data.
            prop_assert_eq!(
                f.has_visual.iter().filter(|&&b| b).count(),
                kg.num_images()
            );
        }
    }

    #[test]
    fn alignment_is_one_to_one(spec in preset_strategy(), seed in 0u64..1000) {
        let ds = SynthConfig::preset(spec).scaled(60).generate(seed);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for &(s, t) in ds.train_pairs.iter().chain(&ds.test_pairs) {
            prop_assert!(seen_s.insert(s));
            prop_assert!(seen_t.insert(t));
        }
    }

    #[test]
    fn same_seed_same_dataset_different_seed_different(spec in preset_strategy(), seed in 0u64..1000) {
        let cfg = SynthConfig::preset(spec).scaled(50);
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert_eq!(&a.source.rel_triples, &b.source.rel_triples);
        prop_assert_eq!(&a.test_pairs, &b.test_pairs);
        let c = cfg.generate(seed + 1);
        prop_assert!(a.source.rel_triples != c.source.rel_triples || a.test_pairs != c.test_pairs);
    }
}
