//! Property tests for the synthetic benchmark generator: every generated
//! split must satisfy the dataset invariants regardless of preset, scale,
//! ratio knobs, or seed.

use desalign_mmkg::{DatasetSpec, FeatureDims, ModalFeatures, SynthConfig};
use desalign_testkit::{check, ensure, ensure_eq, Rng64, SliceRandom};

const CASES: u64 = 24;

fn preset(rng: &mut Rng64) -> DatasetSpec {
    *DatasetSpec::ALL.choose(rng).expect("non-empty preset list")
}

#[test]
fn generated_datasets_always_validate() {
    check(
        "generated_datasets_always_validate",
        CASES,
        |rng| (preset(rng), rng.gen_range(30..120usize), rng.gen_range(0..10_000u64), rng.gen_range(0.05f32..0.9)),
        |&(spec, scale, seed, r_seed)| {
            let ds = SynthConfig::preset(spec).scaled(scale).with_seed_ratio(r_seed).generate(seed);
            ensure_eq!(ds.validate(), Ok(()));
            ensure!(ds.num_pairs() > 0);
            ensure!((ds.seed_ratio() - r_seed).abs() < 0.15);
            Ok(())
        },
    );
}

#[test]
fn ratio_overrides_bound_coverage() {
    check(
        "ratio_overrides_bound_coverage",
        CASES,
        |rng| (preset(rng), rng.gen_range(0..1000u64), rng.gen_range(0.05f32..0.95)),
        |&(spec, seed, r)| {
            let ds = SynthConfig::preset(spec).scaled(80).with_image_ratio(r).with_text_ratio(r).generate(seed);
            let img_cov = ds.source.num_images() as f32 / ds.source.num_entities as f32;
            ensure!((img_cov - r).abs() < 0.1, "image coverage {img_cov} vs requested {r}");
            let tex_cov =
                ds.source.entities_with_attributes().iter().filter(|&&b| b).count() as f32 / ds.source.num_entities as f32;
            ensure!(tex_cov <= r + 0.1, "text coverage {tex_cov} exceeds requested {r}");
            Ok(())
        },
    );
}

#[test]
fn feature_matrices_are_finite_and_shaped() {
    check(
        "feature_matrices_are_finite_and_shaped",
        CASES,
        |rng| (preset(rng), rng.gen_range(0..1000u64)),
        |&(spec, seed)| {
            let ds = SynthConfig::preset(spec).scaled(60).generate(seed);
            let dims = FeatureDims { relation: 32, attribute: 32, visual: 64 };
            for kg in [&ds.source, &ds.target] {
                let f = ModalFeatures::build(kg, &dims);
                ensure_eq!(f.num_entities(), kg.num_entities);
                ensure!(f.relation.all_finite());
                ensure!(f.attribute.all_finite());
                ensure!(f.visual.all_finite());
                // Presence masks must be consistent with the raw data.
                ensure_eq!(f.has_visual.iter().filter(|&&b| b).count(), kg.num_images());
            }
            Ok(())
        },
    );
}

#[test]
fn alignment_is_one_to_one() {
    check("alignment_is_one_to_one", CASES, |rng| (preset(rng), rng.gen_range(0..1000u64)), |&(spec, seed)| {
        let ds = SynthConfig::preset(spec).scaled(60).generate(seed);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for &(s, t) in ds.train_pairs.iter().chain(&ds.test_pairs) {
            ensure!(seen_s.insert(s));
            ensure!(seen_t.insert(t));
        }
        Ok(())
    });
}

#[test]
fn same_seed_same_dataset_different_seed_different() {
    check(
        "same_seed_same_dataset_different_seed_different",
        CASES,
        |rng| (preset(rng), rng.gen_range(0..1000u64)),
        |&(spec, seed)| {
            let cfg = SynthConfig::preset(spec).scaled(50);
            let a = cfg.generate(seed);
            let b = cfg.generate(seed);
            ensure_eq!(&a.source.rel_triples, &b.source.rel_triples);
            ensure_eq!(&a.test_pairs, &b.test_pairs);
            let c = cfg.generate(seed + 1);
            ensure!(a.source.rel_triples != c.source.rel_triples || a.test_pairs != c.test_pairs);
            Ok(())
        },
    );
}
