//! Repair soundness against the testkit corruptors: whatever
//! `desalign_testkit::corrupt` breaks, a `Repair` audit must fix, and a
//! second repair must change nothing.
//!
//! Three properties, over random kinds × severities × seeds:
//!
//! 1. **Soundness** — a corrupted dataset, once repaired, passes `Strict`.
//! 2. **Idempotence** — repairing an already-repaired dataset is a
//!    fingerprint-level no-op.
//! 3. **Clean no-op** — repairing a dataset that was never corrupted
//!    leaves it bit-identical (so wiring the auditor into a clean
//!    pipeline cannot perturb training).

use desalign_mmkg::{dataset_fingerprint, AuditPolicy, DatasetSpec, SynthConfig};
use desalign_testkit::{check, corrupt_dataset, ensure, ensure_eq, CorruptionKind, SliceRandom};

const CASES: u64 = 36;

#[test]
fn repaired_corruption_passes_strict_and_repair_is_idempotent() {
    check(
        "repaired_corruption_passes_strict",
        CASES,
        |rng| {
            let kind = *CorruptionKind::ALL.choose(rng).expect("non-empty kind list");
            let spec = *DatasetSpec::ALL.choose(rng).expect("non-empty preset list");
            (kind, spec, rng.gen_range(30..90usize), rng.gen_range(0.02f32..0.6), rng.gen_range(0..10_000u64))
        },
        |&(kind, spec, scale, severity, seed)| {
            let mut ds = SynthConfig::preset(spec).scaled(scale).generate(seed);
            let applied = corrupt_dataset(&mut ds, kind, severity, seed);
            ensure!(applied > 0, "{} applied no corruption at scale {scale}", kind.name());

            // A structural corruption must be visible to Strict before repair.
            if !kind.is_degradation() {
                ensure!(ds.clone().audit(AuditPolicy::Strict).is_err(), "{} invisible to strict audit", kind.name());
            }

            // Soundness: repair, then strict passes.
            let report = ds.audit(AuditPolicy::Repair).map_err(|e| format!("repair refused {}: {e}", kind.name()))?;
            if !kind.is_degradation() {
                ensure!(report.total_defects() > 0, "{} repaired zero defects", kind.name());
            }
            let fp = dataset_fingerprint(&ds);
            ds.clone()
                .audit(AuditPolicy::Strict)
                .map_err(|e| format!("repaired {} dataset still fails strict: {e}", kind.name()))?;

            // Idempotence: a second repair is a fingerprint no-op.
            let second = ds.audit(AuditPolicy::Repair).map_err(|e| format!("second repair refused: {e}"))?;
            ensure_eq!(second.total_defects(), 0);
            ensure_eq!(dataset_fingerprint(&ds), fp);
            Ok(())
        },
    );
}

#[test]
fn repairing_clean_data_is_bit_identical() {
    check(
        "repairing_clean_data_is_bit_identical",
        CASES,
        |rng| {
            let spec = *DatasetSpec::ALL.choose(rng).expect("non-empty preset list");
            (spec, rng.gen_range(30..100usize), rng.gen_range(0..10_000u64))
        },
        |&(spec, scale, seed)| {
            let mut ds = SynthConfig::preset(spec).scaled(scale).generate(seed);
            let before = dataset_fingerprint(&ds);
            let report = ds.audit(AuditPolicy::Repair).map_err(|e| format!("clean repair refused: {e}"))?;
            ensure_eq!(report.total_defects(), 0);
            ensure!(report.is_clean());
            ensure_eq!(dataset_fingerprint(&ds), before);
            Ok(())
        },
    );
}
