//! Loader fuzzing: `load_dataset_json` must never panic, no matter how a
//! serialized dataset is damaged in transit. Every mutated payload either
//! loads a *valid* dataset or returns a typed [`DesalignError`] — the
//! corrupted-byte half of the data-plane robustness contract
//! (docs/RELIABILITY.md).
//!
//! The sweep is deterministic: byte mutations come from
//! [`desalign_testkit::mutate_bytes`] seeded per case, so a failure
//! reproduces from its case index alone.

use desalign_mmkg::{load_dataset_json, save_dataset_json, DatasetSpec, SynthConfig};
use desalign_testkit::{case_seed, mutate_bytes};
use std::fs;
use std::path::PathBuf;

fn fuzz_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("desalign-loader-fuzz");
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

#[test]
fn mutated_payloads_load_clean_or_fail_typed_never_panic() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(40).generate(3);
    let path = fuzz_dir().join("seed.json");
    save_dataset_json(&ds, &path).expect("serialize seed dataset");
    let clean = fs::read(&path).expect("read seed bytes");

    let mutated_path = fuzz_dir().join("mutated.json");
    let mut loads = 0usize;
    let mut typed_errors = 0usize;
    const SWEEP: u64 = 300;
    for case in 0..SWEEP {
        // Light damage early (single bit flips that often stay parseable),
        // heavier structural damage later in the sweep.
        let mutations = 1 + (case as usize % 24);
        let bytes = mutate_bytes(&clean, mutations, case_seed("loader_fuzz", case));
        fs::write(&mutated_path, &bytes).expect("write mutated payload");
        match load_dataset_json(&mutated_path) {
            Ok(loaded) => {
                // Anything that loads must satisfy the full invariant set.
                loaded.validate().unwrap_or_else(|e| panic!("case {case}: loader accepted an invalid dataset: {e}"));
                loads += 1;
            }
            Err(e) => {
                // The error must render and carry a defect class.
                assert!(!e.to_string().is_empty(), "case {case}: empty error display");
                let _ = e.class;
                typed_errors += 1;
            }
        }
    }
    assert_eq!(loads + typed_errors, SWEEP as usize);
    // The sweep is only meaningful if mutation actually broke payloads.
    assert!(typed_errors > 0, "no mutated payload was rejected ({loads} loaded)");

    fs::remove_file(&path).ok();
    fs::remove_file(&mutated_path).ok();
}

#[test]
fn truncation_sweep_never_panics() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(30).generate(9);
    let path = fuzz_dir().join("truncated.json");
    save_dataset_json(&ds, &path).expect("serialize");
    let clean = fs::read(&path).expect("read");
    // Cutting the payload at a spread of offsets (including 0 and just
    // short of full length) exercises every parser state.
    for step in 0..64usize {
        let cut = clean.len() * step / 64;
        fs::write(&path, &clean[..cut]).expect("write truncated");
        match load_dataset_json(&path) {
            Ok(loaded) => assert!(loaded.validate().is_ok()),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    fs::remove_file(&path).ok();
}
