//! Shard-by-shard streaming audit and assembly for `DSHARD01` dataset
//! directories.
//!
//! [`StreamingAuditor`] is the out-of-core counterpart of the in-memory
//! [`crate::DatasetAuditor`]: it validates (and under
//! [`AuditPolicy::Repair`] repairs, rewriting each fixed shard atomically)
//! a shard directory while holding **at most one decoded shard** in
//! memory, plus O(n)-bit presence bitmaps and the integer alignment-pair
//! records — never the feature rows, which dominate a real MMKG's
//! footprint. The per-record verdicts are the *same functions* the
//! in-memory auditor uses (`audit.rs`), so the two paths cannot drift:
//! repairing a dataset in memory and repairing its sharded form yield
//! bit-identical datasets (property-tested in `tests/shard_stream.rs`,
//! CI-gated).
//!
//! Cross-shard state is what makes streaming audit subtle; three pieces
//! are global and handled in a histogram/collection pass before repair:
//!
//! - the **majority image dimension** per side (a per-shard majority could
//!   disagree with the in-memory global majority);
//! - the **one-to-one pair scan** (duplicate pairs may span shards; the
//!   train list must win ties over test, in original order);
//! - **quarantine**: under `Repair` an unreadable shard is counted
//!   (`shard.quarantined`), skipped, and left untouched on disk — other
//!   shards are still audited and repaired; assembly then refuses the
//!   directory. Under `Strict` the first unreadable shard fails the audit
//!   immediately with the shard file and byte offset in the error.
//!
//! Telemetry mirrors the in-memory auditor (`audit.<class>` counters, one
//! emitted report) plus the new `shard.read`, `shard.bytes_read`,
//! `shard.rewritten`, and `shard.quarantined` counters.
//!
//! ```
//! use desalign_mmkg::{dataset_fingerprint, read_manifest, write_shards};
//! use desalign_mmkg::{AuditPolicy, DatasetSpec, StreamingAuditor, SynthConfig};
//!
//! let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(3);
//! let dir = std::env::temp_dir().join("desalign-stream-docex");
//! write_shards(&ds, &dir, 32).unwrap();
//!
//! let report = StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir).unwrap();
//! assert!(report.audit.is_clean() && report.quarantined.is_empty());
//!
//! // Assembly digest-checks against the manifest fingerprint.
//! let assembled = read_manifest(&dir).unwrap().to_dataset(&dir).unwrap();
//! assert_eq!(dataset_fingerprint(&assembled), dataset_fingerprint(&ds));
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::audit::{
    dataset_fingerprint, majority_from_counts, vet_attr_triple, vet_image_row, AuditReport, PairVet, RelTripleVet,
};
use crate::shard::{
    decode_shard, encode_shard, write_manifest, ShardManifest, ShardMeta, ShardRecords,
};
use crate::{AlignmentDataset, AuditPolicy, Mmkg};
use desalign_util::{checksum64, json, read_verified, DefectClass, DesalignError, Json};
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::Path;

/// Result of one streaming audit pass: the familiar defect census plus
/// shard-level accounting.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Per-class defect census and repair count (same semantics as the
    /// in-memory [`crate::DatasetAuditor`]).
    pub audit: AuditReport,
    /// Shard payload reads performed (the auditor scans twice: one
    /// histogram/pair-collection pass, one verdict/repair pass).
    pub shards_read: usize,
    /// Shards rewritten with repairs applied (0 under `Strict`).
    pub shards_rewritten: usize,
    /// Indices of shards that failed frame/decode verification under
    /// `Repair` and were skipped (left untouched on disk).
    pub quarantined: Vec<usize>,
    /// Largest shard payload decoded, in bytes — the streaming memory
    /// high-water mark for feature data.
    pub peak_payload_bytes: u64,
    /// The manifest's dataset fingerprint after the audit (recomputed
    /// from the repaired shards when repairs were applied; stale when
    /// shards were quarantined).
    pub fingerprint: u64,
}

impl StreamReport {
    /// JSON form: the audit census nested under shard-level accounting.
    pub fn to_json(&self) -> Json {
        json!({
            "kind": "streaming_audit_report",
            "audit": self.audit.to_json(),
            "shards_read": self.shards_read,
            "shards_rewritten": self.shards_rewritten,
            "quarantined": self.quarantined.clone(),
            "peak_payload_bytes": self.peak_payload_bytes as f64,
        })
    }
}

/// The streaming auditor; see the [module docs](self) for semantics.
#[derive(Clone, Copy, Debug)]
pub struct StreamingAuditor {
    policy: AuditPolicy,
}

/// Reads, frame-verifies, manifest-cross-checks, and decodes one shard.
/// Used by the auditor, the assembler, and [`streaming_fingerprint`].
fn load_verified_shard(dir: &Path, meta: &ShardMeta) -> Result<crate::Shard, DesalignError> {
    let path = dir.join(&meta.file);
    let loc = || path.display().to_string();
    // Same fault site as the random-access `read_shard`: a flaky disk
    // looks the same whether a shard is loaded for streaming or directly.
    desalign_failpoint::fail_io("shard.read").map_err(|e| DesalignError::io(loc(), e))?;
    let payload = read_verified(&path).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            DesalignError::parse(loc(), format!("shard frame invalid: {e}"))
        } else {
            DesalignError::io(loc(), e)
        }
    })?;
    if payload.len() as u64 != meta.payload_len || checksum64(&payload) != meta.checksum {
        return Err(DesalignError::schema(
            loc(),
            format!(
                "shard disagrees with manifest: payload {} bytes / checksum {:016x}, manifest records {} / {:016x}",
                payload.len(),
                checksum64(&payload),
                meta.payload_len,
                meta.checksum
            ),
        ));
    }
    let shard = decode_shard(&payload, &loc())?;
    if shard.index != meta.index || shard.src_range != meta.src_range || shard.tgt_range != meta.tgt_range {
        return Err(DesalignError::schema(loc(), "shard header disagrees with the manifest entry"));
    }
    Ok(shard)
}

impl StreamingAuditor {
    /// An auditor applying `policy`.
    pub fn new(policy: AuditPolicy) -> Self {
        Self { policy }
    }

    /// Audits the shard directory at `dir`.
    ///
    /// `Repair` fixes defects shard-by-shard (each repaired shard is
    /// rewritten atomically), quarantines unreadable shards, and — when
    /// anything changed and nothing was quarantined — recomputes the
    /// manifest's dataset fingerprint from the repaired shards and
    /// rewrites the manifest. `Strict` never touches disk and fails on
    /// the first defect with the full census (or immediately on an
    /// unreadable shard, with the file and byte offset in the error).
    pub fn audit_dir(&self, dir: &Path) -> Result<StreamReport, DesalignError> {
        let repair = self.policy == AuditPolicy::Repair;
        let mut manifest = crate::read_manifest(dir)?;
        let mut report = AuditReport::new(self.policy);
        let mut first: Option<DesalignError> = None;
        let mut repairs = 0usize;
        let mut shards_read = 0usize;
        let mut bytes_read = 0u64;
        let mut peak_payload = 0u64;
        let mut quarantined: Vec<usize> = Vec::new();

        // --- pass 1: dimension histograms + pair collection -----------
        let mut src_dims: BTreeMap<usize, usize> = BTreeMap::new();
        let mut tgt_dims: BTreeMap<usize, usize> = BTreeMap::new();
        // (orig_idx, s, t) per list, gathered across shards.
        let mut all_pairs: [Vec<(usize, usize, usize)>; 2] = [Vec::new(), Vec::new()];
        for meta in &manifest.shards {
            match load_verified_shard(dir, meta) {
                Ok(shard) => {
                    shards_read += 1;
                    bytes_read += meta.payload_len;
                    peak_payload = peak_payload.max(meta.payload_len);
                    for row in shard.src_images.iter().flatten() {
                        *src_dims.entry(row.len()).or_insert(0) += 1;
                    }
                    for row in shard.tgt_images.iter().flatten() {
                        *tgt_dims.entry(row.len()).or_insert(0) += 1;
                    }
                    for (list, pairs) in [&shard.train_pairs, &shard.test_pairs].into_iter().enumerate() {
                        all_pairs[list].extend(pairs.iter().map(|&(i, (s, t))| (i, s, t)));
                    }
                }
                Err(e) => {
                    if !repair {
                        return Err(e.wrap(
                            DefectClass::Schema,
                            manifest.name.clone(),
                            format!("strict streaming audit: shard {} is unreadable", meta.index),
                        ));
                    }
                    quarantined.push(meta.index);
                }
            }
        }
        let src_expected = majority_from_counts(src_dims);
        let tgt_expected = majority_from_counts(tgt_dims);

        // --- global pair verdicts (train fully before test) -----------
        // Original list order is restored by sorting on orig_idx; the
        // verdicts and locations then match the in-memory auditor's
        // exactly.
        let mut pair_defects: Vec<(DefectClass, String, String)> = Vec::new();
        let mut drop_pairs: [HashSet<usize>; 2] = [HashSet::new(), HashSet::new()];
        let mut vet = PairVet::new(manifest.source.num_entities, manifest.target.num_entities);
        for (list, label) in [(0usize, "train_pairs"), (1, "test_pairs")] {
            all_pairs[list].sort_unstable_by_key(|&(i, _, _)| i);
            for &(i, s, t) in &all_pairs[list] {
                if let Some((class, ctx)) = vet.vet(s, t) {
                    pair_defects.push((class, format!("{label}[{i}]"), ctx));
                    drop_pairs[list].insert(i);
                }
            }
        }

        // --- pass 2: per-shard verdicts, repairs, rewrites ------------
        let quarantine_set: HashSet<usize> = quarantined.iter().copied().collect();
        let mut shards_rewritten = 0usize;
        for meta in manifest.shards.iter_mut() {
            if quarantine_set.contains(&meta.index) {
                continue;
            }
            let mut shard = load_verified_shard(dir, meta)?; // verified in pass 1; a race here is a hard error
            shards_read += 1;
            bytes_read += meta.payload_len;
            let file = &meta.file;
            let mut changed = false;

            let sight = |report: &mut AuditReport,
                             first: &mut Option<DesalignError>,
                             repairs: &mut usize,
                             class: DefectClass,
                             loc: String,
                             ctx: String| {
                report.record(class);
                if first.is_none() {
                    *first = Some(DesalignError::new(class, loc, ctx));
                }
                if repair {
                    *repairs += 1;
                }
            };

            // Both sides share identical handling; (records, images,
            // range, vocab, side label).
            for side in 0..2 {
                let (rel, attr, images, range, n, num_rel, num_attr, expected, label) = if side == 0 {
                    (
                        &mut shard.src_rel,
                        &mut shard.src_attr,
                        &mut shard.src_images,
                        meta.src_range,
                        manifest.source.num_entities,
                        manifest.source.num_relations,
                        manifest.source.num_attributes,
                        src_expected,
                        "source",
                    )
                } else {
                    (
                        &mut shard.tgt_rel,
                        &mut shard.tgt_attr,
                        &mut shard.tgt_images,
                        meta.tgt_range,
                        manifest.target.num_entities,
                        manifest.target.num_relations,
                        manifest.target.num_attributes,
                        tgt_expected,
                        "target",
                    )
                };

                // Relation triples. Duplicates share a head entity, so a
                // per-shard vet sees exactly the duplicates the global
                // scan would (original order is preserved within a shard).
                let mut rel_vet = RelTripleVet::new(n, num_rel);
                let mut kept = Vec::with_capacity(rel.len());
                for &(orig, (h, r, t)) in rel.iter() {
                    match rel_vet.vet(h, r, t) {
                        Some((class, ctx)) => {
                            sight(&mut report, &mut first, &mut repairs, class, format!("{file}:{label}.rel_triples[{orig}]"), ctx);
                            changed = true;
                        }
                        None => kept.push((orig, (h, r, t))),
                    }
                }
                *rel = kept;

                // Attribute triples.
                let mut kept = Vec::with_capacity(attr.len());
                for &(orig, (e, a)) in attr.iter() {
                    match vet_attr_triple(e, a, n, num_attr) {
                        Some((class, ctx)) => {
                            sight(&mut report, &mut first, &mut repairs, class, format!("{file}:{label}.attr_triples[{orig}]"), ctx);
                            changed = true;
                        }
                        None => kept.push((e, a)),
                    }
                }
                if kept.len() != attr.len() {
                    *attr = kept.iter().enumerate().map(|(j, &v)| (attr[j].0, v)).collect();
                }

                // Image rows, against the side's *global* majority dim.
                for (off, slot) in images.iter_mut().enumerate() {
                    let Some(row) = slot.as_ref() else { continue };
                    if let Some((class, ctx)) = vet_image_row(row, expected) {
                        sight(&mut report, &mut first, &mut repairs, class, format!("{file}:{label}.images[{}]", range.0 + off), ctx);
                        if repair {
                            *slot = None;
                        }
                        changed = true;
                    }
                }

                // Informational missing-modality census over this shard's
                // entity range (post-repair state), mirroring the
                // in-memory auditor.
                let mut has_attr = vec![false; range.1 - range.0];
                for &(_, (e, _)) in attr.iter() {
                    if e >= range.0 && e < range.1 {
                        has_attr[e - range.0] = true;
                    }
                }
                for off in 0..(range.1 - range.0) {
                    if images[off].is_none() {
                        report.record(DefectClass::MissingModality);
                    }
                    if !has_attr[off] {
                        report.record(DefectClass::MissingModality);
                    }
                }
            }

            // Drop pairs the global one-to-one scan rejected (their
            // defects are recorded once, below, not per shard).
            let before = shard.train_pairs.len() + shard.test_pairs.len();
            shard.train_pairs.retain(|&(i, _)| !drop_pairs[0].contains(&i));
            shard.test_pairs.retain(|&(i, _)| !drop_pairs[1].contains(&i));
            if shard.train_pairs.len() + shard.test_pairs.len() != before {
                changed = true;
            }

            if repair && changed {
                let recs = ShardRecords {
                    src_rel: shard.src_rel.clone(),
                    src_attr: shard.src_attr.clone(),
                    tgt_rel: shard.tgt_rel.clone(),
                    tgt_attr: shard.tgt_attr.clone(),
                    train: shard.train_pairs.clone(),
                    test: shard.test_pairs.clone(),
                };
                let path = dir.join(&meta.file);
                let (payload_len, checksum) = encode_shard(
                    &path,
                    meta.index,
                    meta.src_range,
                    meta.tgt_range,
                    &recs,
                    |e| shard.src_images[e - meta.src_range.0].clone(),
                    |e| shard.tgt_images[e - meta.tgt_range.0].clone(),
                )
                .map_err(|e| DesalignError::io(path.display().to_string(), e))?;
                meta.payload_len = payload_len;
                meta.checksum = checksum;
                shards_rewritten += 1;
            }
        }

        // Replay the pair defects into the census (after the per-shard
        // defects, matching the in-memory sighting order: graphs first,
        // pairs last).
        for (class, loc, ctx) in pair_defects {
            report.record(class);
            if first.is_none() {
                first = Some(DesalignError::new(class, loc, ctx));
            }
            if repair {
                repairs += 1;
            }
        }
        report.repairs = repairs;

        // --- manifest + telemetry -------------------------------------
        if repair && quarantined.is_empty() && shards_rewritten > 0 {
            manifest.dataset_fingerprint = streaming_fingerprint(dir, &manifest)?;
            write_manifest(dir, &manifest)?;
        } else if repair && shards_rewritten > 0 {
            // Quarantined shards make the fingerprint uncomputable; keep
            // the stale one (assembly refuses the directory anyway) but
            // persist the rewritten shards' new checksums.
            write_manifest(dir, &manifest)?;
        }

        for class in DefectClass::ALL {
            let n = report.count(class);
            if n > 0 {
                desalign_telemetry::counter(class.counter_name()).add(n as u64);
            }
        }
        desalign_telemetry::counter("shard.read").add(shards_read as u64);
        desalign_telemetry::counter("shard.bytes_read").add(bytes_read);
        desalign_telemetry::counter("shard.rewritten").add(shards_rewritten as u64);
        desalign_telemetry::counter("shard.quarantined").add(quarantined.len() as u64);

        let stream_report = StreamReport {
            audit: report,
            shards_read,
            shards_rewritten,
            quarantined,
            peak_payload_bytes: peak_payload,
            fingerprint: manifest.dataset_fingerprint,
        };
        desalign_telemetry::emit(&stream_report.to_json());

        if !repair && !stream_report.audit.is_clean() {
            let summary = stream_report.audit.summary();
            let total = stream_report.audit.total_defects();
            let err = first.expect("defects imply a first sighting").wrap(
                DefectClass::Schema,
                manifest.name.clone(),
                format!("strict audit found {total} defect(s): {summary}"),
            );
            return Err(err);
        }
        Ok(stream_report)
    }
}

impl ShardManifest {
    /// Assembles the full in-memory [`AlignmentDataset`] from a shard
    /// directory, restoring exact original record order via the stored
    /// `orig_idx` fields, then **digest-checks** the result: if
    /// [`dataset_fingerprint`] of the assembled dataset differs from the
    /// manifest's, assembly fails with a `Schema` error rather than
    /// return silently divergent data. Any unreadable or
    /// manifest-disagreeing shard (e.g. one quarantined by a repair
    /// audit) fails assembly with that shard named.
    ///
    /// This is the one full-materialization endpoint of the streaming
    /// data plane — it necessarily holds the whole dataset. Training and
    /// auditing paths should stay shard-at-a-time instead.
    pub fn to_dataset(&self, dir: &Path) -> Result<AlignmentDataset, DesalignError> {
        let (n_s, n_t) = (self.source.num_entities, self.target.num_entities);
        let mut src_rel: Vec<(usize, (usize, usize, usize))> = Vec::new();
        let mut src_attr: Vec<(usize, (usize, usize))> = Vec::new();
        let mut src_images: Vec<Option<Vec<f32>>> = vec![None; n_s];
        let mut tgt_rel: Vec<(usize, (usize, usize, usize))> = Vec::new();
        let mut tgt_attr: Vec<(usize, (usize, usize))> = Vec::new();
        let mut tgt_images: Vec<Option<Vec<f32>>> = vec![None; n_t];
        let mut train: Vec<(usize, (usize, usize))> = Vec::new();
        let mut test: Vec<(usize, (usize, usize))> = Vec::new();
        for meta in &self.shards {
            let shard = load_verified_shard(dir, meta)?;
            src_rel.extend_from_slice(&shard.src_rel);
            src_attr.extend_from_slice(&shard.src_attr);
            tgt_rel.extend_from_slice(&shard.tgt_rel);
            tgt_attr.extend_from_slice(&shard.tgt_attr);
            train.extend_from_slice(&shard.train_pairs);
            test.extend_from_slice(&shard.test_pairs);
            for (off, row) in shard.src_images.into_iter().enumerate() {
                src_images[meta.src_range.0 + off] = row;
            }
            for (off, row) in shard.tgt_images.into_iter().enumerate() {
                tgt_images[meta.tgt_range.0 + off] = row;
            }
        }
        fn strip<T>(mut v: Vec<(usize, T)>) -> Vec<T> {
            v.sort_unstable_by_key(|&(i, _)| i);
            v.into_iter().map(|(_, x)| x).collect()
        }
        let ds = AlignmentDataset {
            name: self.name.clone(),
            source: Mmkg {
                num_entities: n_s,
                num_relations: self.source.num_relations,
                num_attributes: self.source.num_attributes,
                rel_triples: strip(src_rel),
                attr_triples: strip(src_attr),
                images: src_images,
            },
            target: Mmkg {
                num_entities: n_t,
                num_relations: self.target.num_relations,
                num_attributes: self.target.num_attributes,
                rel_triples: strip(tgt_rel),
                attr_triples: strip(tgt_attr),
                images: tgt_images,
            },
            train_pairs: strip(train),
            test_pairs: strip(test),
        };
        let fp = dataset_fingerprint(&ds);
        if fp != self.dataset_fingerprint {
            return Err(DesalignError::schema(
                dir.display().to_string(),
                format!(
                    "assembled dataset fingerprint {fp:016x} does not match the manifest's {:016x}",
                    self.dataset_fingerprint
                ),
            ));
        }
        Ok(ds)
    }
}

/// FNV-1a 64 fold, byte-compatible with [`dataset_fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
}

/// Computes [`dataset_fingerprint`] of the dataset a shard directory
/// assembles to — **without materializing the feature rows**: integer
/// records are collected and re-ordered in memory (O(triples + pairs)
/// words), while image rows stream through the hash one shard at a time
/// (entity ranges are contiguous and ascending, which is exactly the
/// fingerprint's traversal order). The manifest's own
/// `dataset_fingerprint` field is ignored, so this is also how that field
/// is (re)computed after repairs and by the streaming generator.
pub fn streaming_fingerprint(dir: &Path, manifest: &ShardManifest) -> Result<u64, DesalignError> {
    // Pass 1: integer records (the cheap part of the dataset).
    let mut rel: [Vec<(usize, (usize, usize, usize))>; 2] = [Vec::new(), Vec::new()];
    let mut attr: [Vec<(usize, (usize, usize))>; 2] = [Vec::new(), Vec::new()];
    let mut pairs: [Vec<(usize, (usize, usize))>; 2] = [Vec::new(), Vec::new()];
    for meta in &manifest.shards {
        let shard = load_verified_shard(dir, meta)?;
        rel[0].extend_from_slice(&shard.src_rel);
        rel[1].extend_from_slice(&shard.tgt_rel);
        attr[0].extend_from_slice(&shard.src_attr);
        attr[1].extend_from_slice(&shard.tgt_attr);
        pairs[0].extend_from_slice(&shard.train_pairs);
        pairs[1].extend_from_slice(&shard.test_pairs);
    }
    for list in rel.iter_mut() {
        list.sort_unstable_by_key(|&(i, _)| i);
    }
    for list in attr.iter_mut() {
        list.sort_unstable_by_key(|&(i, _)| i);
    }
    for list in pairs.iter_mut() {
        list.sort_unstable_by_key(|&(i, _)| i);
    }

    let mut h = Fnv::new();
    h.eat(manifest.name.as_bytes());
    // Passes 2–3: per side, hash sizes + integer lists, then stream the
    // side's image rows shard-at-a-time in entity order.
    for (side, meta) in [(0usize, manifest.source), (1, manifest.target)] {
        let n = meta.num_entities;
        for v in [n, meta.num_relations, meta.num_attributes, rel[side].len(), attr[side].len(), n] {
            h.eat_u64(v as u64);
        }
        for &(_, (a, b, c)) in &rel[side] {
            h.eat_u64(a as u64);
            h.eat_u64(b as u64);
            h.eat_u64(c as u64);
        }
        for &(_, (a, b)) in &attr[side] {
            h.eat_u64(a as u64);
            h.eat_u64(b as u64);
        }
        for shard_meta in &manifest.shards {
            let shard = load_verified_shard(dir, shard_meta)?;
            let images = if side == 0 { &shard.src_images } else { &shard.tgt_images };
            for img in images {
                match img {
                    None => h.eat(&[0]),
                    Some(row) => {
                        h.eat(&[1]);
                        h.eat_u64(row.len() as u64);
                        for &v in row {
                            h.eat(&v.to_bits().to_le_bytes());
                        }
                    }
                }
            }
        }
    }
    for list in &pairs {
        h.eat_u64(list.len() as u64);
        for &(_, (a, b)) in list {
            h.eat_u64(a as u64);
            h.eat_u64(b as u64);
        }
    }
    Ok(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::write_shards;
    use crate::{DatasetSpec, SynthConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("desalign-stream-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn small() -> AlignmentDataset {
        SynthConfig::preset(DatasetSpec::FbDb15k).scaled(90).generate(17)
    }

    #[test]
    fn streaming_fingerprint_matches_in_memory() {
        let ds = small();
        let dir = tmpdir("fp");
        let manifest = write_shards(&ds, &dir, 32).expect("write");
        let fp = streaming_fingerprint(&dir, &manifest).expect("fingerprint");
        assert_eq!(fp, dataset_fingerprint(&ds));
        assert_eq!(fp, manifest.dataset_fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_directory_audits_clean_and_untouched() {
        let ds = small();
        let dir = tmpdir("clean");
        let manifest = write_shards(&ds, &dir, 32).expect("write");
        let before: Vec<Vec<u8>> =
            manifest.shards.iter().map(|m| std::fs::read(dir.join(&m.file)).expect("read")).collect();
        let report = StreamingAuditor::new(AuditPolicy::Repair).audit_dir(&dir).expect("audit");
        assert!(report.audit.is_clean(), "{}", report.audit.summary());
        assert_eq!(report.shards_rewritten, 0);
        assert_eq!(report.quarantined, Vec::<usize>::new());
        for (m, b) in manifest.shards.iter().zip(&before) {
            assert_eq!(&std::fs::read(dir.join(&m.file)).expect("read"), b, "no-op audit must leave shards bit-identical");
        }
        assert!(StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assembly_rejects_fingerprint_mismatch() {
        let ds = small();
        let dir = tmpdir("fp-mismatch");
        let mut manifest = write_shards(&ds, &dir, 40).expect("write");
        manifest.dataset_fingerprint ^= 1;
        let err = manifest.to_dataset(&dir).unwrap_err();
        assert_eq!(err.class, desalign_util::DefectClass::Schema);
        assert!(err.to_string().contains("does not match the manifest"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
