//! The dataset auditor: defect census, strict rejection, deterministic
//! repair.
//!
//! Real MMKG pipelines break on corrupt inputs long before the model does:
//! a dangling triple endpoint panics graph construction, a NaN image row
//! silently poisons fusion, a duplicated seed pair skews supervision. The
//! [`DatasetAuditor`] scans an [`AlignmentDataset`] for every defect class
//! of the [`DefectClass`] taxonomy and either rejects it with a full
//! census ([`AuditPolicy::Strict`]) or quarantines/repairs the defects
//! deterministically ([`AuditPolicy::Repair`]):
//!
//! | defect | repair |
//! |---|---|
//! | dangling triple endpoint | drop the triple |
//! | unknown relation / attribute id | drop the triple |
//! | self-loop relation triple | drop the triple |
//! | duplicate relation triple | keep the first occurrence |
//! | out-of-range alignment pair | drop the pair |
//! | duplicate alignment pair (one-to-one violation) | keep the first (train scanned before test) |
//! | non-finite image feature row | quarantine to `None` (missing image) |
//! | zero-norm image feature row | quarantine to `None` |
//! | image row with the wrong dimension | quarantine to `None` (majority dim wins) |
//! | `images` length ≠ entity count | truncate / pad with `None` |
//!
//! Duplicate **attribute** triples are *not* defects: the Bag-of-Words
//! encoder uses multiplicity as term frequency. Missing modalities are
//! counted informationally ([`DefectClass::MissingModality`]) but never
//! rejected — real MMKGs are incomplete by nature; the model handles them
//! via masked fusion (`mask_missing_modalities`).
//!
//! Repair is **idempotent** (repairing twice equals repairing once) and
//! **sound** (a repaired dataset passes `Strict`); on an already-clean
//! dataset it is a bit-identical no-op, checked by
//! [`dataset_fingerprint`]. These properties are enforced by property
//! tests and the CI robustness gate.
//!
//! ```
//! use desalign_mmkg::{AuditPolicy, DatasetSpec, SynthConfig};
//!
//! let mut ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(1);
//! ds.source.images[0] = Some(vec![f32::NAN; 4]); // corrupt one feature row
//! let report = ds.audit(AuditPolicy::Repair).expect("repair always succeeds");
//! assert!(report.repairs >= 1);
//! assert!(ds.audit(AuditPolicy::Strict).is_ok(), "repaired data passes strict");
//! ```

use crate::{AlignmentDataset, Mmkg};
use desalign_util::{json, DefectClass, DesalignError, Json};

/// What the auditor does when it finds a defect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditPolicy {
    /// Reject: the dataset is left untouched and the audit fails with a
    /// [`DesalignError`] carrying the full defect census.
    Strict,
    /// Quarantine + deterministic fix: defects are repaired in place and
    /// the audit succeeds with a report of what was done.
    Repair,
}

impl AuditPolicy {
    /// Stable lowercase name (JSON reports).
    pub fn name(&self) -> &'static str {
        match self {
            AuditPolicy::Strict => "strict",
            AuditPolicy::Repair => "repair",
        }
    }
}

/// Structured result of one audit pass: per-class defect counts plus the
/// number of repairs applied.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// Policy the audit ran under.
    pub policy: AuditPolicy,
    /// Defect counts, indexed in [`DefectClass::ALL`] order.
    counts: [usize; DefectClass::ALL.len()],
    /// Repairs applied (0 under [`AuditPolicy::Strict`]).
    pub repairs: usize,
}

impl AuditReport {
    pub(crate) fn new(policy: AuditPolicy) -> Self {
        Self { policy, counts: [0; DefectClass::ALL.len()], repairs: 0 }
    }

    pub(crate) fn record(&mut self, class: DefectClass) {
        let idx = DefectClass::ALL.iter().position(|c| *c == class).expect("class is in ALL");
        self.counts[idx] += 1;
    }

    /// Number of defects of `class` found.
    pub fn count(&self, class: DefectClass) -> usize {
        let idx = DefectClass::ALL.iter().position(|c| *c == class).expect("class is in ALL");
        self.counts[idx]
    }

    /// Total *hard* defects — everything except the informational
    /// [`DefectClass::MissingModality`] census.
    pub fn total_defects(&self) -> usize {
        DefectClass::ALL
            .iter()
            .filter(|c| **c != DefectClass::MissingModality)
            .map(|c| self.count(*c))
            .sum()
    }

    /// True when no hard defect was found.
    pub fn is_clean(&self) -> bool {
        self.total_defects() == 0
    }

    /// One-line census, e.g. `self-loop-triple=3, duplicate-pair=1`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = DefectClass::ALL
            .iter()
            .filter(|c| self.count(**c) > 0)
            .map(|c| format!("{}={}", c.name(), self.count(*c)))
            .collect();
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join(", ")
        }
    }

    /// The report as JSON: `{"kind": "audit_report", "policy": …,
    /// "defects": {"<class>": n, …}, "repairs": n, "clean": bool}`.
    /// All classes are present (zeros included) so the schema is stable.
    pub fn to_json(&self) -> Json {
        let mut defects = Vec::with_capacity(DefectClass::ALL.len());
        for c in DefectClass::ALL {
            defects.push((c.name().to_string(), Json::Num(self.count(c) as f64)));
        }
        json!({
            "kind": "audit_report",
            "policy": self.policy.name(),
            "defects": Json::Object(defects),
            "repairs": self.repairs,
            "clean": self.is_clean(),
        })
    }
}

/// The auditor itself; see the [module docs](self) for semantics.
#[derive(Clone, Copy, Debug)]
pub struct DatasetAuditor {
    policy: AuditPolicy,
}

impl DatasetAuditor {
    /// An auditor applying `policy`.
    pub fn new(policy: AuditPolicy) -> Self {
        Self { policy }
    }

    /// Audits `ds`. Under [`AuditPolicy::Repair`] defects are fixed in
    /// place; under [`AuditPolicy::Strict`] the dataset is never mutated
    /// and any hard defect fails the audit with a census-carrying error.
    ///
    /// Either way the per-class counts are bumped on the
    /// `desalign-telemetry` counters (`audit.<class>`) and, when a
    /// metrics sink is installed, the [`AuditReport`] JSON is emitted.
    pub fn audit(&self, ds: &mut AlignmentDataset) -> Result<AuditReport, DesalignError> {
        let repair = self.policy == AuditPolicy::Repair;
        let mut report = AuditReport::new(self.policy);
        let mut first: Option<DesalignError> = None;

        // A defect sighting: count it, remember the first for the Strict
        // error message.
        macro_rules! defect {
            ($class:expr, $loc:expr, $ctx:expr) => {{
                report.record($class);
                if first.is_none() {
                    first = Some(DesalignError::new($class, $loc, $ctx));
                }
                if repair {
                    report.repairs += 1;
                }
            }};
        }

        audit_kg(&mut ds.source, "source", repair, &mut |class, loc, ctx| defect!(class, loc, ctx));
        audit_kg(&mut ds.target, "target", repair, &mut |class, loc, ctx| defect!(class, loc, ctx));

        // Alignment pairs: bounds + one-to-one, train scanned before test
        // so under Repair the supervision pairs win ties.
        let mut vet = PairVet::new(ds.source.num_entities, ds.target.num_entities);
        for (pairs, label) in [(&mut ds.train_pairs, "train_pairs"), (&mut ds.test_pairs, "test_pairs")] {
            let mut keep = Vec::with_capacity(pairs.len());
            for (i, &(s, t)) in pairs.iter().enumerate() {
                match vet.vet(s, t) {
                    Some((class, ctx)) => defect!(class, format!("{label}[{i}]"), ctx),
                    None => keep.push((s, t)),
                }
            }
            if repair && keep.len() != pairs.len() {
                *pairs = keep;
            }
        }

        // Informational missing-modality census (post-repair state).
        for kg in [&ds.source, &ds.target] {
            let has_text = kg.entities_with_attributes();
            for e in 0..kg.num_entities {
                if kg.images.get(e).is_none_or(|img| img.is_none()) {
                    report.record(DefectClass::MissingModality);
                }
                if !has_text.get(e).copied().unwrap_or(false) {
                    report.record(DefectClass::MissingModality);
                }
            }
        }

        for class in DefectClass::ALL {
            let n = report.count(class);
            if n > 0 {
                desalign_telemetry::counter(class.counter_name()).add(n as u64);
            }
        }
        desalign_telemetry::emit(&report.to_json());

        if !repair && !report.is_clean() {
            let summary = report.summary();
            let total = report.total_defects();
            let err = first.expect("defects imply a first sighting").wrap(
                DefectClass::Schema,
                ds.name.clone(),
                format!("strict audit found {total} defect(s): {summary}"),
            );
            return Err(err);
        }
        Ok(report)
    }
}

impl AlignmentDataset {
    /// Runs a [`DatasetAuditor`] with `policy` over this dataset; see the
    /// [audit module docs](crate::audit) for defect and repair semantics.
    pub fn audit(&mut self, policy: AuditPolicy) -> Result<AuditReport, DesalignError> {
        DatasetAuditor::new(policy).audit(self)
    }
}

/// Audits one side graph, reporting defects through `sink` and repairing
/// in place when `repair` is set.
fn audit_kg(
    kg: &mut Mmkg,
    side: &str,
    repair: bool,
    sink: &mut dyn FnMut(DefectClass, String, String),
) {
    let n = kg.num_entities;

    // Container shape: images vector must have one slot per entity.
    if kg.images.len() != n {
        sink(
            DefectClass::Schema,
            format!("{side}.images"),
            format!("{} entries for {n} entities", kg.images.len()),
        );
        if repair {
            kg.images.resize(n, None);
        }
    }

    // Relation triples: bounds, vocabulary, self-loops, duplicates.
    let mut vet = RelTripleVet::new(n, kg.num_relations);
    let mut keep = Vec::with_capacity(kg.rel_triples.len());
    for (i, &(h, r, t)) in kg.rel_triples.iter().enumerate() {
        match vet.vet(h, r, t) {
            Some((class, ctx)) => sink(class, format!("{side}.rel_triples[{i}]"), ctx),
            None => keep.push((h, r, t)),
        }
    }
    if repair && keep.len() != kg.rel_triples.len() {
        kg.rel_triples = keep;
    }

    // Attribute triples: bounds + vocabulary only — duplicates are term
    // frequency for the BoW encoder, never defects.
    let mut keep = Vec::with_capacity(kg.attr_triples.len());
    for (i, &(e, a)) in kg.attr_triples.iter().enumerate() {
        match vet_attr_triple(e, a, n, kg.num_attributes) {
            Some((class, ctx)) => sink(class, format!("{side}.attr_triples[{i}]"), ctx),
            None => keep.push((e, a)),
        }
    }
    if repair && keep.len() != kg.attr_triples.len() {
        kg.attr_triples = keep;
    }

    // Image rows. The reference dimension is the majority dimension over
    // present rows (ties break to the smaller), so one bad row cannot
    // outvote the rest of the graph.
    let expected_dim = majority_dim(&kg.images);
    for i in 0..kg.images.len().min(n) {
        let Some(row) = kg.images[i].as_ref() else { continue };
        if let Some((class, ctx)) = vet_image_row(row, expected_dim) {
            sink(class, format!("{side}.images[{i}]"), ctx);
            if repair {
                kg.images[i] = None; // quarantine: entity loses its image
            }
        }
    }
}

// --- shared per-record verdicts --------------------------------------
//
// Both the in-memory `DatasetAuditor` above and the shard-streaming
// `StreamingAuditor` (stream.rs) classify records through these helpers,
// so the two audit paths cannot drift apart semantically. The shard
// format assigns every relation triple to the shard owning its head
// entity, so duplicates (which share all three fields) always land in the
// same shard and the per-list `RelTripleVet` state gives identical
// verdicts in both paths.

/// Stateful relation-triple vet. Check order (first match wins): dangling
/// endpoint → unknown relation → self-loop → duplicate. One instance per
/// triple list.
pub(crate) struct RelTripleVet {
    n: usize,
    num_relations: usize,
    seen: std::collections::HashSet<(usize, usize, usize)>,
}

impl RelTripleVet {
    pub(crate) fn new(n: usize, num_relations: usize) -> Self {
        Self { n, num_relations, seen: std::collections::HashSet::new() }
    }

    /// `None` = keep the triple; `Some` = drop it, with class + context.
    pub(crate) fn vet(&mut self, h: usize, r: usize, t: usize) -> Option<(DefectClass, String)> {
        let (n, num_rel) = (self.n, self.num_relations);
        if h >= n || t >= n {
            Some((DefectClass::DanglingEndpoint, format!("({h},{r},{t}) references a missing entity (have {n})")))
        } else if r >= num_rel {
            Some((DefectClass::UnknownRelation, format!("({h},{r},{t}) uses unknown relation {r} (have {num_rel})")))
        } else if h == t {
            Some((DefectClass::SelfLoopTriple, format!("({h},{r},{t}) is a self-loop")))
        } else if !self.seen.insert((h, r, t)) {
            Some((DefectClass::DuplicateTriple, format!("({h},{r},{t}) repeats an earlier triple")))
        } else {
            None
        }
    }
}

/// Attribute-triple vet: bounds + vocabulary (duplicates are BoW term
/// frequency, never defects). `None` = keep.
pub(crate) fn vet_attr_triple(e: usize, a: usize, n: usize, num_attributes: usize) -> Option<(DefectClass, String)> {
    if e >= n {
        Some((DefectClass::DanglingEndpoint, format!("({e},{a}) references a missing entity (have {n})")))
    } else if a >= num_attributes {
        Some((DefectClass::UnknownAttribute, format!("({e},{a}) uses unknown attribute {a} (have {num_attributes})")))
    } else {
        None
    }
}

/// Image-row vet against the side's majority dimension. Check order:
/// non-finite value → dimension mismatch → zero norm. `None` = keep.
pub(crate) fn vet_image_row(row: &[f32], expected_dim: Option<usize>) -> Option<(DefectClass, String)> {
    if let Some(k) = row.iter().position(|v| !v.is_finite()) {
        Some((DefectClass::NonFiniteFeature, format!("row value [{k}] = {} is not finite", row[k])))
    } else if expected_dim.is_some_and(|d| row.len() != d) {
        Some((DefectClass::DimensionMismatch, format!("row has {} dims, majority is {}", row.len(), expected_dim.unwrap_or(0))))
    } else if row.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>() == 0.0 {
        Some((DefectClass::ZeroNormFeature, "row has zero norm".to_string()))
    } else {
        None
    }
}

/// Stateful alignment-pair vet: bounds then one-to-one. Feed the train
/// list fully before the test list so supervision pairs win ties.
pub(crate) struct PairVet {
    n_s: usize,
    n_t: usize,
    seen_s: Vec<bool>,
    seen_t: Vec<bool>,
}

impl PairVet {
    pub(crate) fn new(n_s: usize, n_t: usize) -> Self {
        Self { n_s, n_t, seen_s: vec![false; n_s], seen_t: vec![false; n_t] }
    }

    /// `None` = keep the pair; `Some` = drop it.
    pub(crate) fn vet(&mut self, s: usize, t: usize) -> Option<(DefectClass, String)> {
        let (n_s, n_t) = (self.n_s, self.n_t);
        if s >= n_s || t >= n_t {
            return Some((DefectClass::PairOutOfRange, format!("({s},{t}) out of bounds for {n_s}x{n_t} entities")));
        }
        if self.seen_s[s] || self.seen_t[t] {
            return Some((DefectClass::DuplicatePair, format!("({s},{t}) violates one-to-one mapping")));
        }
        self.seen_s[s] = true;
        self.seen_t[t] = true;
        None
    }
}

/// The most common feature-row dimension (ties break to the smaller);
/// `None` when no image is present.
fn majority_dim(images: &[Option<Vec<f32>>]) -> Option<usize> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for row in images.iter().flatten() {
        *counts.entry(row.len()).or_insert(0) += 1;
    }
    majority_from_counts(counts)
}

/// Majority rule shared with the streaming auditor, which accumulates the
/// dimension histogram across shards before deciding. BTreeMap iterates in
/// ascending key order, so `>` (strict max) keeps the smaller dimension on
/// a tie.
pub(crate) fn majority_from_counts(counts: std::collections::BTreeMap<usize, usize>) -> Option<usize> {
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1)).map(|(d, _)| d)
}

/// A structural FNV-1a fingerprint of the full dataset — name, sizes,
/// triples, attribute triples, image presence and exact f32 bit patterns,
/// train and test pairs. Two datasets fingerprint equal iff they are
/// bit-identical, which is how the "repairing clean data is a no-op"
/// guarantee is checked.
pub fn dataset_fingerprint(ds: &AlignmentDataset) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(ds.name.as_bytes());
    for kg in [&ds.source, &ds.target] {
        for v in [kg.num_entities, kg.num_relations, kg.num_attributes, kg.rel_triples.len(), kg.attr_triples.len(), kg.images.len()] {
            eat(&(v as u64).to_le_bytes());
        }
        for &(a, b, c) in &kg.rel_triples {
            eat(&(a as u64).to_le_bytes());
            eat(&(b as u64).to_le_bytes());
            eat(&(c as u64).to_le_bytes());
        }
        for &(a, b) in &kg.attr_triples {
            eat(&(a as u64).to_le_bytes());
            eat(&(b as u64).to_le_bytes());
        }
        for img in &kg.images {
            match img {
                None => eat(&[0]),
                Some(row) => {
                    eat(&[1]);
                    eat(&(row.len() as u64).to_le_bytes());
                    for &v in row {
                        eat(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
    }
    for pairs in [&ds.train_pairs, &ds.test_pairs] {
        eat(&(pairs.len() as u64).to_le_bytes());
        for &(a, b) in pairs.iter() {
            eat(&(a as u64).to_le_bytes());
            eat(&(b as u64).to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, SynthConfig};

    fn small() -> AlignmentDataset {
        SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(3)
    }

    #[test]
    fn clean_synth_data_passes_strict() {
        let mut ds = small();
        let report = ds.audit(AuditPolicy::Strict).expect("generated data is clean");
        assert!(report.is_clean(), "{}", report.summary());
        // Missing modalities are informational, not defects — and synth
        // data always has some (coverage < 1).
        assert!(report.count(DefectClass::MissingModality) > 0);
    }

    #[test]
    fn strict_never_mutates() {
        let mut ds = small();
        ds.source.rel_triples.push((0, 0, 0)); // self-loop
        ds.source.images[1] = Some(vec![f32::INFINITY; 4]);
        let before = dataset_fingerprint(&ds);
        let err = ds.audit(AuditPolicy::Strict).expect_err("defects must fail strict");
        assert_eq!(dataset_fingerprint(&ds), before, "strict audit mutated the dataset");
        assert!(err.to_string().contains("self-loop-triple"), "{err}");
        assert!(err.to_string().contains("non-finite-feature"), "{err}");
    }

    #[test]
    fn repair_fixes_every_injected_defect_class() {
        let mut ds = small();
        let n_s = ds.source.num_entities;
        ds.source.rel_triples.push((0, 0, n_s + 5)); // dangling
        ds.source.rel_triples.push((0, ds.source.num_relations + 2, 1)); // unknown relation
        ds.source.rel_triples.push((2, 0, 2)); // self-loop
        let dup = ds.source.rel_triples[0];
        ds.source.rel_triples.push(dup); // duplicate
        ds.source.attr_triples.push((n_s + 1, 0)); // dangling attr
        ds.source.attr_triples.push((0, ds.source.num_attributes + 9)); // unknown attr
        let dim = ds.source.images.iter().flatten().next().expect("synth data has images").len();
        ds.source.images[0] = Some(vec![f32::NAN; dim]);
        ds.source.images[1] = Some(vec![0.0; dim]); // zero norm at the right dim
        ds.source.images[2] = Some(vec![1.0; dim + 1]); // wrong dim (majority wins)
        ds.train_pairs.push((n_s + 7, 0)); // out of range
        let dup_pair = ds.train_pairs[0];
        ds.test_pairs.push(dup_pair); // duplicate pair

        let report = ds.audit(AuditPolicy::Repair).expect("repair succeeds");
        for class in [
            DefectClass::DanglingEndpoint,
            DefectClass::UnknownRelation,
            DefectClass::UnknownAttribute,
            DefectClass::SelfLoopTriple,
            DefectClass::DuplicateTriple,
            DefectClass::PairOutOfRange,
            DefectClass::DuplicatePair,
            DefectClass::NonFiniteFeature,
            DefectClass::ZeroNormFeature,
            DefectClass::DimensionMismatch,
        ] {
            assert!(report.count(class) > 0, "expected {} to be detected; census: {}", class.name(), report.summary());
        }
        assert_eq!(report.repairs, report.total_defects());

        // Sound: the repaired dataset passes strict and validate().
        assert!(ds.audit(AuditPolicy::Strict).is_ok());
        assert_eq!(ds.validate(), Ok(()));
        // Quarantined rows are gone, not zeroed.
        assert!(ds.source.images[0].is_none());
        assert!(ds.source.images[1].is_none());
        assert!(ds.source.images[2].is_none());
    }

    #[test]
    fn repair_of_clean_data_is_a_noop() {
        let mut ds = small();
        let before = dataset_fingerprint(&ds);
        let report = ds.audit(AuditPolicy::Repair).expect("repair");
        assert!(report.is_clean());
        assert_eq!(report.repairs, 0);
        assert_eq!(dataset_fingerprint(&ds), before, "repairing clean data must be bit-identical");
    }

    #[test]
    fn repair_is_idempotent() {
        let mut ds = small();
        ds.source.rel_triples.push((1, 0, 1));
        ds.target.images[0] = Some(vec![f32::NAN; 4]);
        ds.audit(AuditPolicy::Repair).expect("first repair");
        let after_one = dataset_fingerprint(&ds);
        let second = ds.audit(AuditPolicy::Repair).expect("second repair");
        assert_eq!(second.repairs, 0);
        assert_eq!(dataset_fingerprint(&ds), after_one);
    }

    #[test]
    fn train_pairs_win_one_to_one_ties_over_test_pairs() {
        let mut ds = small();
        let (s, t) = ds.train_pairs[0];
        ds.test_pairs.insert(0, (s, t));
        ds.audit(AuditPolicy::Repair).expect("repair");
        assert!(ds.train_pairs.contains(&(s, t)), "train pair must survive");
        assert!(!ds.test_pairs.contains(&(s, t)), "test duplicate must be dropped");
    }

    #[test]
    fn images_length_mismatch_is_repaired() {
        let mut ds = small();
        ds.target.images.truncate(ds.target.num_entities - 3);
        let report = ds.audit(AuditPolicy::Repair).expect("repair");
        assert!(report.count(DefectClass::Schema) > 0);
        assert_eq!(ds.target.images.len(), ds.target.num_entities);
        assert!(ds.audit(AuditPolicy::Strict).is_ok());
    }

    #[test]
    fn fingerprint_sees_every_field() {
        let base = small();
        let fp = dataset_fingerprint(&base);
        let mut m = base.clone();
        m.name.push('x');
        assert_ne!(dataset_fingerprint(&m), fp);
        let mut m = base.clone();
        m.source.rel_triples[0].0 ^= 1;
        assert_ne!(dataset_fingerprint(&m), fp);
        let mut m = base.clone();
        if let Some(row) = m.target.images.iter_mut().flatten().next() {
            row[0] = f32::from_bits(row[0].to_bits() ^ 1);
        }
        assert_ne!(dataset_fingerprint(&m), fp);
        let mut m = base.clone();
        m.test_pairs.pop();
        assert_ne!(dataset_fingerprint(&m), fp);
    }

    #[test]
    fn report_json_has_stable_schema() {
        let mut ds = small();
        ds.source.rel_triples.push((0, 0, 0));
        let report = ds.audit(AuditPolicy::Repair).expect("repair");
        let j = report.to_json();
        assert_eq!(j.field::<String>("kind").unwrap(), "audit_report");
        assert_eq!(j.field::<String>("policy").unwrap(), "repair");
        let defects = match j.get("defects") {
            Some(Json::Object(pairs)) => pairs.len(),
            other => panic!("defects must be an object, got {other:?}"),
        };
        assert_eq!(defects, DefectClass::ALL.len(), "all classes present, zeros included");
    }
}
