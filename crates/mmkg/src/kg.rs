//! The multi-modal knowledge graph data model.

use desalign_graph::UndirectedGraph;
use desalign_util::{DefectClass, DesalignError};

/// One multi-modal knowledge graph `G = (ε, R, A, V)` (Section II).
///
/// Entities are dense indices `0..num_entities`. Relation triples carry a
/// relation type; attribute triples attach a textual-attribute id to an
/// entity; images are raw per-entity feature vectors (the output of a
/// pretrained vision encoder in the paper, a simulated one here) — `None`
/// when the entity has no image.
#[derive(Clone, Debug)]
pub struct Mmkg {
    /// Number of entities `|ε|`.
    pub num_entities: usize,
    /// Size of the relation vocabulary `|R|`.
    pub num_relations: usize,
    /// Size of the textual-attribute vocabulary `|A|`.
    pub num_attributes: usize,
    /// Relation triples `(head, relation, tail)`.
    pub rel_triples: Vec<(usize, usize, usize)>,
    /// Attribute triples `(entity, attribute)`.
    pub attr_triples: Vec<(usize, usize)>,
    /// Per-entity image features (`None` = image absent).
    pub images: Vec<Option<Vec<f32>>>,
}

impl Mmkg {
    /// Validates internal invariants; reports the first violation as a
    /// typed [`DesalignError`] naming its defect class and location.
    ///
    /// This is the cheap structural check (bounds + dimensions) run by
    /// loaders and debug assertions; the full defect census with repair
    /// lives in [`crate::DatasetAuditor`].
    pub fn validate(&self) -> Result<(), DesalignError> {
        self.validate_at("kg")
    }

    /// [`Mmkg::validate`] with error locations prefixed by `side`
    /// (`source` / `target`) so dataset-level reports point at the right
    /// graph.
    pub fn validate_at(&self, side: &str) -> Result<(), DesalignError> {
        if self.images.len() != self.num_entities {
            return Err(DesalignError::new(
                DefectClass::Schema,
                format!("{side}.images"),
                format!("{} entries for {} entities", self.images.len(), self.num_entities),
            ));
        }
        for (i, &(h, r, t)) in self.rel_triples.iter().enumerate() {
            if h >= self.num_entities || t >= self.num_entities {
                return Err(DesalignError::new(
                    DefectClass::DanglingEndpoint,
                    format!("{side}.rel_triples[{i}]"),
                    format!("({h},{r},{t}) references a missing entity (have {})", self.num_entities),
                ));
            }
            if r >= self.num_relations {
                return Err(DesalignError::new(
                    DefectClass::UnknownRelation,
                    format!("{side}.rel_triples[{i}]"),
                    format!("({h},{r},{t}) uses unknown relation {r} (have {})", self.num_relations),
                ));
            }
        }
        for (i, &(e, a)) in self.attr_triples.iter().enumerate() {
            if e >= self.num_entities {
                return Err(DesalignError::new(
                    DefectClass::DanglingEndpoint,
                    format!("{side}.attr_triples[{i}]"),
                    format!("({e},{a}) references a missing entity (have {})", self.num_entities),
                ));
            }
            if a >= self.num_attributes {
                return Err(DesalignError::new(
                    DefectClass::UnknownAttribute,
                    format!("{side}.attr_triples[{i}]"),
                    format!("({e},{a}) uses unknown attribute {a} (have {})", self.num_attributes),
                ));
            }
        }
        let dim = self.images.iter().flatten().map(Vec::len).next();
        if let Some(d) = dim {
            if let Some(i) = (0..self.images.len()).find(|&i| self.images[i].as_ref().is_some_and(|v| v.len() != d)) {
                return Err(DesalignError::new(
                    DefectClass::DimensionMismatch,
                    format!("{side}.images[{i}]"),
                    format!("feature row has {} dims, expected {d}", self.images[i].as_ref().map_or(0, Vec::len)),
                ));
            }
        }
        Ok(())
    }

    /// The undirected structural graph (relation types erased).
    pub fn graph(&self) -> UndirectedGraph {
        UndirectedGraph::new(self.num_entities, self.rel_triples.iter().map(|&(h, _, t)| (h, t)))
    }

    /// Number of entities with an image.
    pub fn num_images(&self) -> usize {
        self.images.iter().filter(|v| v.is_some()).count()
    }

    /// Entities that appear in at least one attribute triple.
    pub fn entities_with_attributes(&self) -> Vec<bool> {
        let mut has = vec![false; self.num_entities];
        for &(e, _) in &self.attr_triples {
            has[e] = true;
        }
        has
    }

    /// Summary statistics in the shape of the paper's Table I row.
    pub fn stats(&self) -> KgStats {
        KgStats {
            entities: self.num_entities,
            relations: self.num_relations,
            attributes: self.num_attributes,
            rel_triples: self.rel_triples.len(),
            attr_triples: self.attr_triples.len(),
            images: self.num_images(),
        }
    }
}

/// Table I-style statistics for one KG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KgStats {
    /// `Ent.`
    pub entities: usize,
    /// `Rel.`
    pub relations: usize,
    /// `Att.`
    pub attributes: usize,
    /// `R.Triples`
    pub rel_triples: usize,
    /// `A.Triples`
    pub attr_triples: usize,
    /// `Image`
    pub images: usize,
}

/// A pair of MMKGs with gold alignments, split into seeds (`Φ'`) and a test
/// set — one benchmark split.
#[derive(Clone, Debug)]
pub struct AlignmentDataset {
    /// Human-readable split name, e.g. `FBDB15K(Rseed=0.2)`.
    pub name: String,
    /// Source graph `G_s`.
    pub source: Mmkg,
    /// Target graph `G_t`.
    pub target: Mmkg,
    /// Seed alignments `Φ'` used for supervision.
    pub train_pairs: Vec<(usize, usize)>,
    /// Held-out alignments used for evaluation.
    pub test_pairs: Vec<(usize, usize)>,
}

impl AlignmentDataset {
    /// Total gold alignments (`EA pairs` of Table I).
    pub fn num_pairs(&self) -> usize {
        self.train_pairs.len() + self.test_pairs.len()
    }

    /// Effective seed ratio `R_seed`.
    pub fn seed_ratio(&self) -> f32 {
        if self.num_pairs() == 0 {
            0.0
        } else {
            self.train_pairs.len() as f32 / self.num_pairs() as f32
        }
    }

    /// Validates both graphs and the alignment lists, reporting the first
    /// violation as a typed [`DesalignError`].
    pub fn validate(&self) -> Result<(), DesalignError> {
        self.source.validate_at("source")?;
        self.target.validate_at("target")?;
        let mut seen_s = vec![false; self.source.num_entities];
        let mut seen_t = vec![false; self.target.num_entities];
        let n_train = self.train_pairs.len();
        for (i, &(s, t)) in self.train_pairs.iter().chain(&self.test_pairs).enumerate() {
            let loc = if i < n_train { format!("train_pairs[{i}]") } else { format!("test_pairs[{}]", i - n_train) };
            if s >= self.source.num_entities || t >= self.target.num_entities {
                return Err(DesalignError::new(
                    DefectClass::PairOutOfRange,
                    loc,
                    format!("({s},{t}) out of bounds for {}x{} entities", self.source.num_entities, self.target.num_entities),
                ));
            }
            if seen_s[s] || seen_t[t] {
                return Err(DesalignError::new(DefectClass::DuplicatePair, loc, format!("({s},{t}) violates one-to-one mapping")));
            }
            seen_s[s] = true;
            seen_t[t] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mmkg {
        Mmkg {
            num_entities: 3,
            num_relations: 2,
            num_attributes: 4,
            rel_triples: vec![(0, 0, 1), (1, 1, 2)],
            attr_triples: vec![(0, 0), (0, 3), (2, 1)],
            images: vec![Some(vec![1.0, 2.0]), None, Some(vec![0.0, 0.5])],
        }
    }

    #[test]
    fn validate_accepts_consistent_kg() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_triples() {
        let mut kg = tiny();
        kg.rel_triples.push((0, 5, 1));
        assert!(kg.validate().is_err());
        let mut kg = tiny();
        kg.attr_triples.push((9, 0));
        assert!(kg.validate().is_err());
        let mut kg = tiny();
        kg.images[1] = Some(vec![1.0]); // wrong dim
        assert!(kg.validate().is_err());
    }

    #[test]
    fn graph_and_stats() {
        let kg = tiny();
        let g = kg.graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let s = kg.stats();
        assert_eq!(s.entities, 3);
        assert_eq!(s.rel_triples, 2);
        assert_eq!(s.attr_triples, 3);
        assert_eq!(s.images, 2);
    }

    #[test]
    fn attribute_coverage() {
        let kg = tiny();
        assert_eq!(kg.entities_with_attributes(), vec![true, false, true]);
    }

    #[test]
    fn dataset_validation_catches_duplicates() {
        let kg = tiny();
        let ds = AlignmentDataset {
            name: "t".into(),
            source: kg.clone(),
            target: kg.clone(),
            train_pairs: vec![(0, 0)],
            test_pairs: vec![(0, 1)], // source entity reused
        };
        assert!(ds.validate().is_err());
        let ds = AlignmentDataset {
            name: "t".into(),
            source: kg.clone(),
            target: kg,
            train_pairs: vec![(0, 0)],
            test_pairs: vec![(1, 1), (2, 2)],
        };
        assert_eq!(ds.validate(), Ok(()));
        assert_eq!(ds.num_pairs(), 3);
        assert!((ds.seed_ratio() - 1.0 / 3.0).abs() < 1e-6);
    }
}
