//! Model-ready modal feature construction.
//!
//! Follows §V-A of the paper: Bag-of-Words encodings for relations (`x^r`)
//! and text attributes (`x^t`) hashed into fixed dims, pretrained-style
//! visual features (`x^v`), and per-modality presence masks. The paper's
//! default dims are `d_r = d_a = 1000` and `d_v = 2048`; the synthetic
//! presets scale these down alongside everything else.

use crate::Mmkg;
use desalign_tensor::{Matrix, Rng64};

/// Target dimensions for each modality's raw features.
#[derive(Clone, Copy, Debug)]
pub struct FeatureDims {
    /// Relation BoW dimension (`d_r`).
    pub relation: usize,
    /// Attribute BoW dimension (`d_a`).
    pub attribute: usize,
    /// Visual feature dimension (`d_v`) — must match the generator's
    /// `vision_dim`.
    pub visual: usize,
}

impl Default for FeatureDims {
    fn default() -> Self {
        Self { relation: 128, attribute: 128, visual: 64 }
    }
}

/// Raw per-modality features and presence masks for one KG.
#[derive(Clone, Debug)]
pub struct ModalFeatures {
    /// Relation BoW (`n × d_r`), ℓ2-normalized rows.
    pub relation: Matrix,
    /// Attribute BoW (`n × d_a`), ℓ2-normalized rows.
    pub attribute: Matrix,
    /// Visual features (`n × d_v`); zero rows where absent.
    pub visual: Matrix,
    /// Entities that participate in ≥ 1 relation triple.
    pub has_relation: Vec<bool>,
    /// Entities with ≥ 1 text attribute.
    pub has_attribute: Vec<bool>,
    /// Entities with an image.
    pub has_visual: Vec<bool>,
}

impl ModalFeatures {
    /// Builds features from a KG.
    ///
    /// # Panics
    /// Panics if the KG's image dimension disagrees with `dims.visual`.
    pub fn build(kg: &Mmkg, dims: &FeatureDims) -> Self {
        let n = kg.num_entities;

        // Relation BoW: each (head, r, tail) contributes the hashed relation
        // id to both endpoints (the standard "relations as words" encoding).
        let mut relation = Matrix::zeros(n, dims.relation);
        let mut has_relation = vec![false; n];
        for &(h, r, t) in &kg.rel_triples {
            let col = hash_index(r, 0x5bd1, dims.relation);
            relation[(h, col)] += 1.0;
            relation[(t, col)] += 1.0;
            has_relation[h] = true;
            has_relation[t] = true;
        }
        let relation = relation.l2_normalize_rows(1e-9);

        // Attribute BoW.
        let mut attribute = Matrix::zeros(n, dims.attribute);
        let mut has_attribute = vec![false; n];
        for &(e, a) in &kg.attr_triples {
            let col = hash_index(a, 0x27d4, dims.attribute);
            attribute[(e, col)] += 1.0;
            has_attribute[e] = true;
        }
        let attribute = attribute.l2_normalize_rows(1e-9);

        // Visual features straight from the (simulated) vision encoder.
        let mut visual = Matrix::zeros(n, dims.visual);
        let mut has_visual = vec![false; n];
        for (e, img) in kg.images.iter().enumerate() {
            if let Some(v) = img {
                assert_eq!(v.len(), dims.visual, "ModalFeatures::build: image dim {} != configured {}", v.len(), dims.visual);
                visual.row_mut(e).copy_from_slice(v);
                has_visual[e] = true;
            }
        }

        Self { relation, attribute, visual, has_relation, has_attribute, has_visual }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.relation.rows()
    }

    /// Missing-modality rates `(relation, attribute, visual)` — the
    /// instrumentation behind the semantic-inconsistency analysis.
    pub fn missing_rates(&self) -> (f32, f32, f32) {
        let rate = |mask: &[bool]| 1.0 - mask.iter().filter(|&&b| b).count() as f32 / mask.len().max(1) as f32;
        (rate(&self.has_relation), rate(&self.has_attribute), rate(&self.has_visual))
    }
}

/// Replaces missing rows with noise drawn from the distribution of the
/// present rows (per-column mean/std) — the paper's training-time policy
/// ("Entities lacking modal features receive randomly generated initial
/// features, based on the distribution of existing modal features", §IV-A)
/// and, at inference time, the baseline interpolation DESAlign's Semantic
/// Propagation replaces.
pub fn fill_missing_with_noise(features: &Matrix, present: &[bool], rng: &mut Rng64) -> Matrix {
    assert_eq!(features.rows(), present.len(), "fill_missing_with_noise: mask length mismatch");
    let n_present = present.iter().filter(|&&b| b).count();
    let cols = features.cols();
    if n_present == 0 {
        // Nothing to estimate from: small uniform noise.
        let mut out = features.clone();
        for i in 0..out.rows() {
            for v in out.row_mut(i) {
                *v = rng.gen_range(-0.01f32..0.01);
            }
        }
        return out;
    }
    // Column statistics over present rows.
    let mut mean = vec![0.0f32; cols];
    for (i, &p) in present.iter().enumerate() {
        if p {
            for (m, &v) in mean.iter_mut().zip(features.row(i)) {
                *m += v;
            }
        }
    }
    for m in &mut mean {
        *m /= n_present as f32;
    }
    let mut var = vec![0.0f32; cols];
    for (i, &p) in present.iter().enumerate() {
        if p {
            for ((s, &v), &m) in var.iter_mut().zip(features.row(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
    }
    for s in &mut var {
        *s /= n_present as f32;
    }
    let std: Vec<f32> = var.iter().map(|v| v.sqrt()).collect();

    let mut out = features.clone();
    for (i, &p) in present.iter().enumerate() {
        if !p {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                *v = mean[j] + std[j] * z;
            }
        }
    }
    out
}

fn hash_index(id: usize, salt: usize, dim: usize) -> usize {
    // Fibonacci hashing; deterministic across runs and platforms.
    (id.wrapping_add(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % dim.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, SynthConfig};
    use desalign_tensor::rng_from_seed;

    fn sample_features() -> (Mmkg, ModalFeatures) {
        let kg = Mmkg {
            num_entities: 4,
            num_relations: 3,
            num_attributes: 5,
            rel_triples: vec![(0, 0, 1), (1, 2, 2)],
            attr_triples: vec![(0, 1), (0, 1), (3, 4)],
            images: vec![Some(vec![1.0, 0.0]), None, None, Some(vec![0.0, 1.0])],
        };
        let dims = FeatureDims { relation: 8, attribute: 8, visual: 2 };
        let f = ModalFeatures::build(&kg, &dims);
        (kg, f)
    }

    #[test]
    fn masks_reflect_participation() {
        let (_, f) = sample_features();
        assert_eq!(f.has_relation, vec![true, true, true, false]);
        assert_eq!(f.has_attribute, vec![true, false, false, true]);
        assert_eq!(f.has_visual, vec![true, false, false, true]);
    }

    #[test]
    fn bow_rows_are_normalized_or_zero() {
        let (_, f) = sample_features();
        for i in 0..4 {
            let norm: f32 = f.relation.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!(norm.abs() < 1e-6 || (norm - 1.0).abs() < 1e-5, "row {i} norm {norm}");
        }
    }

    #[test]
    fn repeated_attributes_increase_weight_before_normalization() {
        // Entity 0 has attribute 1 twice → single BoW column, unit norm.
        let (_, f) = sample_features();
        let nz: Vec<f32> = f.attribute.row(0).iter().copied().filter(|v| *v != 0.0).collect();
        assert_eq!(nz.len(), 1);
        assert!((nz[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missing_rates() {
        let (_, f) = sample_features();
        let (r, a, v) = f.missing_rates();
        assert!((r - 0.25).abs() < 1e-6);
        assert!((a - 0.5).abs() < 1e-6);
        assert!((v - 0.5).abs() < 1e-6);
    }

    #[test]
    fn noise_fill_preserves_present_rows_and_matches_moments() {
        let mut rng = rng_from_seed(1);
        let mut features = Matrix::zeros(200, 3);
        let mut present = vec![false; 200];
        #[allow(clippy::needless_range_loop)]
        for i in 0..100 {
            present[i] = true;
            for (j, v) in features.row_mut(i).iter_mut().enumerate() {
                *v = 2.0 + j as f32; // constant per column → std 0
            }
        }
        let filled = fill_missing_with_noise(&features, &present, &mut rng);
        for i in 0..100 {
            assert_eq!(filled.row(i), features.row(i));
        }
        // With zero std, missing rows equal the column means exactly.
        for i in 100..200 {
            assert!((filled.row(i)[0] - 2.0).abs() < 1e-5);
            assert!((filled.row(i)[2] - 4.0).abs() < 1e-5);
        }
    }

    #[test]
    fn noise_fill_with_no_present_rows_is_small_noise() {
        let mut rng = rng_from_seed(2);
        let features = Matrix::zeros(5, 4);
        let filled = fill_missing_with_noise(&features, &[false; 5], &mut rng);
        assert!(filled.max_abs() <= 0.01);
    }

    #[test]
    fn end_to_end_features_from_generator() {
        let cfg = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(150);
        let ds = cfg.generate(3);
        let dims = FeatureDims { relation: 64, attribute: 64, visual: cfg.vision_dim };
        let f = ModalFeatures::build(&ds.source, &dims);
        assert_eq!(f.num_entities(), ds.source.num_entities);
        let (_, _, v_missing) = f.missing_rates();
        // FB15K side has ~90 % image coverage.
        assert!((v_missing - 0.101).abs() < 0.06, "visual missing {v_missing}");
    }
}
