//! Multi-modal knowledge graphs and the synthetic benchmark generator.
//!
//! The paper evaluates on five public MMKG pairs (Table I): the monolingual
//! FB15K–DB15K and FB15K–YAGO15K, and the bilingual DBP15K (ZH/JA/FR–EN)
//! variants with images attached. Those datasets (DBpedia/Freebase dumps +
//! ResNet-152 features) cannot be redistributed here, so this crate provides
//! a **statistically matched synthetic generator**: a latent "world" KG is
//! sampled, two overlapping views are derived with controlled structural
//! and attribute noise, and modal features are emitted per entity:
//!
//! - *visual* features simulate a pretrained CNN: a fixed random projection
//!   of the entity's latent vector plus per-view noise, so aligned entities
//!   get correlated-but-unequal image embeddings;
//! - *relation/attribute* features are Bag-of-Words count vectors hashed to
//!   fixed dims, exactly the paper's encoding (§V-A, following Yang et al.);
//! - *structure* comes from the view's relation triples.
//!
//! Semantic inconsistency is injected with the same knobs the paper sweeps:
//! `R_seed` (seed-alignment ratio), `R_img` (fraction of entities keeping
//! their image), `R_tex` (fraction keeping text attributes). Every preset of
//! Table I is available at configurable scale, which is what makes the 60
//! benchmark splits of the paper reproducible on a laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod features;
mod kg;
mod loader;
pub mod shard;
pub mod stream;
mod synth;

pub use audit::{dataset_fingerprint, AuditPolicy, AuditReport, DatasetAuditor};
pub use features::{fill_missing_with_noise, FeatureDims, ModalFeatures};
pub use kg::{AlignmentDataset, KgStats, Mmkg};
pub use loader::{load_dataset_json, save_dataset_json};
pub use shard::{
    read_manifest, read_shard, shard_file_name, write_shards, Shard, ShardManifest, ShardMeta, SideMeta,
    MANIFEST_FILE,
};
pub use stream::{streaming_fingerprint, StreamReport, StreamingAuditor};
pub use synth::{DatasetSpec, SynthConfig};
