//! The sharded on-disk dataset format (`DSHARD01`).
//!
//! A dataset directory holds one framed binary file per shard plus a
//! framed JSON manifest, so million-entity MMKGs can be written, audited,
//! and consumed **shard by shard** with peak memory proportional to the
//! largest shard instead of the whole graph. The byte-level contract —
//! header layout, section order, manifest schema, checksum and versioning
//! rules — is specified normatively in `docs/DATA_FORMAT.md`; this module
//! is the reference implementation.
//!
//! Layout in brief: shard `k` owns the contiguous entity ranges
//! `[k·B, (k+1)·B)` on both sides (`B` = `shard_entities`). Every relation
//! triple lives in the shard owning its **head** entity, every attribute
//! triple in the shard owning its entity, every alignment pair in the
//! shard owning its **source** entity, and every image feature row in the
//! shard covering its entity index. Records carry their original list
//! index (`orig_idx`), so the assembler (`ShardManifest::to_dataset`, in
//! [`crate::stream`]) restores the exact original list order and the
//! assembled dataset is bit-identical to the in-memory one
//! ([`crate::dataset_fingerprint`] equal, CI-gated).
//!
//! Every shard file is wrapped in the `desalign-util` atomicio frame
//! (FNV-64 checksum + `DESACKPT` footer), written via the streaming
//! [`FrameWriter`]; the manifest additionally records each shard's payload
//! length and checksum so a swapped-in stale shard is detected even when
//! its own frame verifies.
//!
//! ```
//! use desalign_mmkg::shard::{read_shard, write_shards};
//! use desalign_mmkg::{DatasetSpec, SynthConfig};
//!
//! let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(7);
//! let dir = std::env::temp_dir().join("desalign-shard-docex");
//! let manifest = write_shards(&ds, &dir, 32).unwrap();
//! assert_eq!(manifest.shards.len(), 3); // 80 entities / 32 per shard
//!
//! let first = read_shard(&dir.join(&manifest.shards[0].file)).unwrap();
//! assert_eq!(first.src_range, (0, 32));
//! // Triples in shard 0 all have their head entity in [0, 32).
//! assert!(first.src_rel.iter().all(|&(_, (h, _, _))| h < 32));
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::audit::dataset_fingerprint;
use crate::AlignmentDataset;
use desalign_util::{
    atomic_write, json, read_verified, u64_from_json, u64_to_json, DesalignError, FromJson, FrameWriter, Json,
    JsonError, ToJson,
};
use std::fs;
use std::io;
use std::path::Path;

/// ASCII magic opening every shard payload; the trailing `01` is the
/// format version (see docs/DATA_FORMAT.md §versioning).
pub const SHARD_MAGIC: [u8; 8] = *b"DSHARD01";

/// Manifest (and shard) format version; readers reject anything else.
pub const SHARD_FORMAT_VERSION: u64 = 1;

/// Manifest file name inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Fixed shard header size: 8-byte magic + 11 `u64` fields.
pub const SHARD_HEADER_LEN: usize = 8 + 11 * 8;

/// Canonical shard file name: `shard-00042.bin`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.bin")
}

/// Which shard owns entity `e` under `shard_entities`-sized ranges.
/// Out-of-range ids (corrupt data) clamp to the last shard so every
/// record has a deterministic home and the auditor can drop it there.
pub fn shard_of(e: usize, shard_entities: usize, num_shards: usize) -> usize {
    (e / shard_entities).min(num_shards.saturating_sub(1))
}

/// Per-side vocabulary sizes recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SideMeta {
    /// Entity count.
    pub num_entities: usize,
    /// Relation vocabulary size.
    pub num_relations: usize,
    /// Attribute vocabulary size.
    pub num_attributes: usize,
}

/// One shard's manifest entry: file name, entity ranges, and the frame
/// payload length + FNV-64 checksum (duplicated from the file's own
/// footer so shard-swap corruption is detectable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// File name relative to the dataset directory.
    pub file: String,
    /// Shard index (also encoded in the shard header).
    pub index: usize,
    /// Source-side entity range `[start, end)`.
    pub src_range: (usize, usize),
    /// Target-side entity range `[start, end)`.
    pub tgt_range: (usize, usize),
    /// Frame payload length in bytes.
    pub payload_len: u64,
    /// FNV-64 checksum of the frame payload.
    pub checksum: u64,
}

/// The digest-checked directory manifest: dataset identity, per-side
/// sizes, pair counts, and the shard table. Written with `atomic_write`
/// (so it is itself framed and checksummed) by [`write_shards`] and the
/// streaming generator/auditor.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Format version ([`SHARD_FORMAT_VERSION`]).
    pub version: u64,
    /// Dataset display name.
    pub name: String,
    /// [`crate::dataset_fingerprint`] of the assembled dataset; the
    /// assembler refuses to return a dataset that hashes differently.
    pub dataset_fingerprint: u64,
    /// Source-side sizes.
    pub source: SideMeta,
    /// Target-side sizes.
    pub target: SideMeta,
    /// Train (seed) pair count across all shards.
    pub n_train: usize,
    /// Test pair count across all shards.
    pub n_test: usize,
    /// Entities per shard range (`B`).
    pub shard_entities: usize,
    /// Shard table, in index order.
    pub shards: Vec<ShardMeta>,
}

impl ToJson for SideMeta {
    fn to_json(&self) -> Json {
        json!({
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "num_attributes": self.num_attributes,
        })
    }
}

impl FromJson for SideMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SideMeta {
            num_entities: v.field("num_entities")?,
            num_relations: v.field("num_relations")?,
            num_attributes: v.field("num_attributes")?,
        })
    }
}

impl ToJson for ShardMeta {
    fn to_json(&self) -> Json {
        json!({
            "file": self.file,
            "index": self.index,
            "src_start": self.src_range.0,
            "src_end": self.src_range.1,
            "tgt_start": self.tgt_range.0,
            "tgt_end": self.tgt_range.1,
            "payload_len": u64_to_json(self.payload_len),
            "checksum": u64_to_json(self.checksum),
        })
    }
}

impl FromJson for ShardMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ShardMeta {
            file: v.field("file")?,
            index: v.field("index")?,
            src_range: (v.field("src_start")?, v.field("src_end")?),
            tgt_range: (v.field("tgt_start")?, v.field("tgt_end")?),
            payload_len: u64_from_json(v.get("payload_len").ok_or_else(|| JsonError::schema("missing payload_len"))?)?,
            checksum: u64_from_json(v.get("checksum").ok_or_else(|| JsonError::schema("missing checksum"))?)?,
        })
    }
}

impl ToJson for ShardManifest {
    fn to_json(&self) -> Json {
        json!({
            "kind": "desalign-shard-manifest",
            "version": self.version,
            "name": self.name,
            "dataset_fingerprint": u64_to_json(self.dataset_fingerprint),
            "source": self.source,
            "target": self.target,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "shard_entities": self.shard_entities,
            "shards": self.shards,
        })
    }
}

impl FromJson for ShardManifest {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind: String = v.field("kind")?;
        if kind != "desalign-shard-manifest" {
            return Err(JsonError::schema(format!("kind '{kind}' is not a shard manifest")));
        }
        Ok(ShardManifest {
            version: v.field("version")?,
            name: v.field("name")?,
            dataset_fingerprint: u64_from_json(
                v.get("dataset_fingerprint").ok_or_else(|| JsonError::schema("missing dataset_fingerprint"))?,
            )?,
            source: v.field("source")?,
            target: v.field("target")?,
            n_train: v.field("n_train")?,
            n_test: v.field("n_test")?,
            shard_entities: v.field("shard_entities")?,
            shards: v.field("shards")?,
        })
    }
}

/// One decoded shard. Integer records carry their original list index
/// (`orig_idx`) so assembly can restore the exact source order; image
/// vectors are indexed by `entity − range.start`.
#[derive(Clone, Debug, PartialEq)]
pub struct Shard {
    /// Shard index.
    pub index: usize,
    /// Source entity range `[start, end)`.
    pub src_range: (usize, usize),
    /// Target entity range `[start, end)`.
    pub tgt_range: (usize, usize),
    /// Source relation triples: `(orig_idx, (h, r, t))`, head in range.
    pub src_rel: Vec<(usize, (usize, usize, usize))>,
    /// Source attribute triples: `(orig_idx, (e, a))`, entity in range.
    pub src_attr: Vec<(usize, (usize, usize))>,
    /// Source image rows, one slot per entity in range.
    pub src_images: Vec<Option<Vec<f32>>>,
    /// Target relation triples.
    pub tgt_rel: Vec<(usize, (usize, usize, usize))>,
    /// Target attribute triples.
    pub tgt_attr: Vec<(usize, (usize, usize))>,
    /// Target image rows, one slot per entity in range.
    pub tgt_images: Vec<Option<Vec<f32>>>,
    /// Train pairs: `(orig_idx, (s, t))`, source entity in range.
    pub train_pairs: Vec<(usize, (usize, usize))>,
    /// Test pairs: `(orig_idx, (s, t))`, source entity in range.
    pub test_pairs: Vec<(usize, (usize, usize))>,
}

/// The integer records bound for one shard (feature rows are supplied
/// separately, by closure, so callers can stream them from disk).
#[derive(Default)]
pub(crate) struct ShardRecords {
    pub src_rel: Vec<(usize, (usize, usize, usize))>,
    pub src_attr: Vec<(usize, (usize, usize))>,
    pub tgt_rel: Vec<(usize, (usize, usize, usize))>,
    pub tgt_attr: Vec<(usize, (usize, usize))>,
    pub train: Vec<(usize, (usize, usize))>,
    pub test: Vec<(usize, (usize, usize))>,
}

/// Buckets a dataset's integer records into `num_shards` ranges.
pub(crate) fn bucket_records(ds: &AlignmentDataset, shard_entities: usize, num_shards: usize) -> Vec<ShardRecords> {
    let mut buckets: Vec<ShardRecords> = (0..num_shards).map(|_| ShardRecords::default()).collect();
    let of = |e: usize| shard_of(e, shard_entities, num_shards);
    for (i, &trip) in ds.source.rel_triples.iter().enumerate() {
        buckets[of(trip.0)].src_rel.push((i, trip));
    }
    for (i, &at) in ds.source.attr_triples.iter().enumerate() {
        buckets[of(at.0)].src_attr.push((i, at));
    }
    for (i, &trip) in ds.target.rel_triples.iter().enumerate() {
        buckets[of(trip.0)].tgt_rel.push((i, trip));
    }
    for (i, &at) in ds.target.attr_triples.iter().enumerate() {
        buckets[of(at.0)].tgt_attr.push((i, at));
    }
    for (i, &p) in ds.train_pairs.iter().enumerate() {
        buckets[of(p.0)].train.push((i, p));
    }
    for (i, &p) in ds.test_pairs.iter().enumerate() {
        buckets[of(p.0)].test.push((i, p));
    }
    buckets
}

/// Entity range of shard `k` on a side with `n` entities.
pub(crate) fn range_of(k: usize, shard_entities: usize, n: usize) -> (usize, usize) {
    let start = (k * shard_entities).min(n);
    let end = ((k + 1) * shard_entities).min(n);
    (start, end)
}

/// Encodes one shard to `path` through a [`FrameWriter`] (so the payload
/// never exists as one contiguous buffer). `src_image`/`tgt_image` yield
/// the feature row for a **global** entity id, or `None` when absent.
/// Returns `(payload_len, checksum)` for the manifest.
pub(crate) fn encode_shard(
    path: &Path,
    index: usize,
    src_range: (usize, usize),
    tgt_range: (usize, usize),
    recs: &ShardRecords,
    mut src_image: impl FnMut(usize) -> Option<Vec<f32>>,
    mut tgt_image: impl FnMut(usize) -> Option<Vec<f32>>,
) -> io::Result<(u64, u64)> {
    let mut w = FrameWriter::create(path)?;
    w.write(&SHARD_MAGIC)?;
    for v in [
        index,
        src_range.0,
        src_range.1,
        tgt_range.0,
        tgt_range.1,
        recs.src_rel.len(),
        recs.src_attr.len(),
        recs.tgt_rel.len(),
        recs.tgt_attr.len(),
        recs.train.len(),
        recs.test.len(),
    ] {
        w.write(&(v as u64).to_le_bytes())?;
    }
    let write_images =
        |w: &mut FrameWriter, range: (usize, usize), image: &mut dyn FnMut(usize) -> Option<Vec<f32>>| -> io::Result<()> {
            for e in range.0..range.1 {
                match image(e) {
                    None => w.write(&[0u8])?,
                    Some(row) => {
                        w.write(&[1u8])?;
                        w.write(&(row.len() as u32).to_le_bytes())?;
                        for v in &row {
                            w.write(&v.to_bits().to_le_bytes())?;
                        }
                    }
                }
            }
            Ok(())
        };
    for &(i, (h, r, t)) in &recs.src_rel {
        for v in [i, h, r, t] {
            w.write(&(v as u64).to_le_bytes())?;
        }
    }
    for &(i, (e, a)) in &recs.src_attr {
        for v in [i, e, a] {
            w.write(&(v as u64).to_le_bytes())?;
        }
    }
    write_images(&mut w, src_range, &mut src_image)?;
    for &(i, (h, r, t)) in &recs.tgt_rel {
        for v in [i, h, r, t] {
            w.write(&(v as u64).to_le_bytes())?;
        }
    }
    for &(i, (e, a)) in &recs.tgt_attr {
        for v in [i, e, a] {
            w.write(&(v as u64).to_le_bytes())?;
        }
    }
    write_images(&mut w, tgt_range, &mut tgt_image)?;
    for pairs in [&recs.train, &recs.test] {
        for &(i, (s, t)) in pairs.iter() {
            for v in [i, s, t] {
                w.write(&(v as u64).to_le_bytes())?;
            }
        }
    }
    let payload_len = w.payload_len();
    let checksum = w.finish()?;
    Ok((payload_len, checksum))
}

/// Writes `ds` as a shard directory under `dir` (created if missing) with
/// `shard_entities` entities per range, and writes the digest-checked
/// manifest last. Returns the manifest. Peak extra memory is one shard's
/// feature rows; the input dataset is already resident by definition —
/// use [`crate::SynthConfig::generate_sharded`] to produce shards without
/// ever materializing the full KG.
///
/// Note on degenerate inputs: the shard format has exactly one image slot
/// per entity, so an `images` vector whose length disagrees with
/// `num_entities` (the in-memory `Schema` defect) is normalized on write
/// — extra rows are dropped, missing slots become `None` — exactly what
/// the in-memory repair does.
pub fn write_shards(ds: &AlignmentDataset, dir: &Path, shard_entities: usize) -> Result<ShardManifest, DesalignError> {
    if shard_entities == 0 {
        return Err(DesalignError::config("shard_entities", "must be ≥ 1"));
    }
    fs::create_dir_all(dir).map_err(|e| DesalignError::io(dir.display().to_string(), e))?;
    let (n_s, n_t) = (ds.source.num_entities, ds.target.num_entities);
    let num_shards = n_s.max(n_t).div_ceil(shard_entities).max(1);
    let buckets = bucket_records(ds, shard_entities, num_shards);
    let mut shards = Vec::with_capacity(num_shards);
    for (k, recs) in buckets.iter().enumerate() {
        let src_range = range_of(k, shard_entities, n_s);
        let tgt_range = range_of(k, shard_entities, n_t);
        let file = shard_file_name(k);
        let path = dir.join(&file);
        let (payload_len, checksum) = encode_shard(
            &path,
            k,
            src_range,
            tgt_range,
            recs,
            |e| ds.source.images.get(e).cloned().flatten(),
            |e| ds.target.images.get(e).cloned().flatten(),
        )
        .map_err(|e| DesalignError::io(path.display().to_string(), e))?;
        shards.push(ShardMeta { file, index: k, src_range, tgt_range, payload_len, checksum });
    }
    let manifest = ShardManifest {
        version: SHARD_FORMAT_VERSION,
        name: ds.name.clone(),
        dataset_fingerprint: dataset_fingerprint(ds),
        source: SideMeta {
            num_entities: n_s,
            num_relations: ds.source.num_relations,
            num_attributes: ds.source.num_attributes,
        },
        target: SideMeta {
            num_entities: n_t,
            num_relations: ds.target.num_relations,
            num_attributes: ds.target.num_attributes,
        },
        n_train: ds.train_pairs.len(),
        n_test: ds.test_pairs.len(),
        shard_entities,
        shards,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

/// Atomically (re)writes the manifest of a shard directory.
pub fn write_manifest(dir: &Path, manifest: &ShardManifest) -> Result<(), DesalignError> {
    let path = dir.join(MANIFEST_FILE);
    atomic_write(&path, manifest.to_json().to_string().as_bytes())
        .map_err(|e| DesalignError::io(path.display().to_string(), e))
}

/// Reads and verifies the manifest of a shard directory. Rejects frames
/// that fail their checksum, JSON that does not parse (with the byte
/// offset in the error location), non-manifest documents, and unsupported
/// format versions.
pub fn read_manifest(dir: &Path) -> Result<ShardManifest, DesalignError> {
    let path = dir.join(MANIFEST_FILE);
    let loc = || path.display().to_string();
    let bytes = read_verified(&path).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            DesalignError::parse(loc(), format!("manifest frame invalid: {e}"))
        } else {
            DesalignError::io(loc(), e)
        }
    })?;
    let text = String::from_utf8(bytes).map_err(|e| DesalignError::parse(loc(), e))?;
    let doc = Json::parse(&text)
        .map_err(|e| DesalignError::parse(format!("{}@byte {}", path.display(), e.offset), e))?;
    let manifest =
        ShardManifest::from_json(&doc).map_err(|e| DesalignError::schema(loc(), e))?;
    if manifest.version != SHARD_FORMAT_VERSION {
        return Err(DesalignError::schema(
            loc(),
            format!("unsupported shard format version {} (this reader implements {SHARD_FORMAT_VERSION})", manifest.version),
        ));
    }
    Ok(manifest)
}

/// Reads and fully verifies one shard file: atomicio frame (length +
/// checksum + magic footer), then the `DSHARD01` payload. Every failure
/// is a typed [`DesalignError`] whose location carries the file and —
/// for payload decode errors — the byte offset where decoding stopped.
pub fn read_shard(path: &Path) -> Result<Shard, DesalignError> {
    // Failpoint `shard.read`: replays a flaky disk under the streaming
    // auditor / neighborhood sampler. No-op without an active schedule.
    desalign_failpoint::fail_io("shard.read")
        .map_err(|e| DesalignError::io(path.display().to_string(), e))?;
    let payload = read_verified(path).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            DesalignError::parse(path.display().to_string(), format!("shard frame invalid: {e}"))
        } else {
            DesalignError::io(path.display().to_string(), e)
        }
    })?;
    decode_shard(&payload, &path.display().to_string())
}

/// Bounds-checked little-endian reader over a shard payload; every error
/// names `file@byte N`.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    file: &'a str,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> DesalignError {
        DesalignError::parse(format!("{}@byte {}", self.file, self.pos), msg)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DesalignError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.err(format!("payload truncated: need {n} bytes, {} remain", self.bytes.len() - self.pos)));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u64(&mut self) -> Result<u64, DesalignError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, DesalignError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} exceeds usize")))
    }

    fn u32(&mut self) -> Result<u32, DesalignError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u8(&mut self) -> Result<u8, DesalignError> {
        Ok(self.take(1)?[0])
    }

    /// Rejects a record count whose section could not possibly fit in the
    /// remaining payload — the guard that keeps hostile counts (e.g.
    /// `u64::MAX` from a bit flip) from driving huge allocations.
    fn check_count(&self, count: usize, record_bytes: usize, what: &str) -> Result<(), DesalignError> {
        match count.checked_mul(record_bytes) {
            Some(total) if total <= self.remaining() => Ok(()),
            _ => Err(self.err(format!(
                "{what} count {count} ({record_bytes} bytes each) exceeds the {} remaining payload bytes",
                self.remaining()
            ))),
        }
    }
}

/// Decodes a verified shard payload; `file` labels error locations.
pub(crate) fn decode_shard(payload: &[u8], file: &str) -> Result<Shard, DesalignError> {
    let mut c = Cursor { bytes: payload, pos: 0, file };
    let magic = c.take(8)?;
    if magic != SHARD_MAGIC {
        return Err(DesalignError::schema(
            format!("{file}@byte 0"),
            format!("bad shard magic {magic:02x?} (expected {:02x?} = \"DSHARD01\")", &SHARD_MAGIC),
        ));
    }
    let index = c.usize()?;
    let src_range = (c.usize()?, c.usize()?);
    let tgt_range = (c.usize()?, c.usize()?);
    for (range, side) in [(src_range, "source"), (tgt_range, "target")] {
        if range.0 > range.1 {
            return Err(c.err(format!("{side} range [{}, {}) is inverted", range.0, range.1)));
        }
    }
    let n_src_rel = c.usize()?;
    let n_src_attr = c.usize()?;
    let n_tgt_rel = c.usize()?;
    let n_tgt_attr = c.usize()?;
    let n_train = c.usize()?;
    let n_test = c.usize()?;

    let read_rel = |c: &mut Cursor, count: usize| -> Result<Vec<(usize, (usize, usize, usize))>, DesalignError> {
        c.check_count(count, 32, "relation triple")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push((c.usize()?, (c.usize()?, c.usize()?, c.usize()?)));
        }
        Ok(out)
    };
    let read_attr = |c: &mut Cursor, count: usize| -> Result<Vec<(usize, (usize, usize))>, DesalignError> {
        c.check_count(count, 24, "attribute triple")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push((c.usize()?, (c.usize()?, c.usize()?)));
        }
        Ok(out)
    };
    let read_images = |c: &mut Cursor, range: (usize, usize)| -> Result<Vec<Option<Vec<f32>>>, DesalignError> {
        let slots = range.1 - range.0;
        c.check_count(slots, 1, "image slot")?;
        let mut out = Vec::with_capacity(slots);
        for _ in 0..slots {
            match c.u8()? {
                0 => out.push(None),
                1 => {
                    let dim = c.u32()? as usize;
                    c.check_count(dim, 4, "image row value")?;
                    let mut row = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        row.push(f32::from_bits(c.u32()?));
                    }
                    out.push(Some(row));
                }
                tag => return Err(c.err(format!("bad image presence tag {tag} (expected 0 or 1)"))),
            }
        }
        Ok(out)
    };
    let read_pairs = |c: &mut Cursor, count: usize| -> Result<Vec<(usize, (usize, usize))>, DesalignError> {
        c.check_count(count, 24, "alignment pair")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push((c.usize()?, (c.usize()?, c.usize()?)));
        }
        Ok(out)
    };

    let src_rel = read_rel(&mut c, n_src_rel)?;
    let src_attr = read_attr(&mut c, n_src_attr)?;
    let src_images = read_images(&mut c, src_range)?;
    let tgt_rel = read_rel(&mut c, n_tgt_rel)?;
    let tgt_attr = read_attr(&mut c, n_tgt_attr)?;
    let tgt_images = read_images(&mut c, tgt_range)?;
    let train_pairs = read_pairs(&mut c, n_train)?;
    let test_pairs = read_pairs(&mut c, n_test)?;
    if c.remaining() != 0 {
        return Err(c.err(format!("{} trailing bytes after the last section", c.remaining())));
    }
    Ok(Shard {
        index,
        src_range,
        tgt_range,
        src_rel,
        src_attr,
        src_images,
        tgt_rel,
        tgt_attr,
        tgt_images,
        train_pairs,
        test_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, SynthConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("desalign-shard-tests").join(name);
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn small() -> AlignmentDataset {
        SynthConfig::preset(DatasetSpec::FbDb15k).scaled(90).generate(11)
    }

    #[test]
    fn write_read_round_trips_every_section() {
        let ds = small();
        let dir = tmpdir("roundtrip");
        let manifest = write_shards(&ds, &dir, 40).expect("write");
        assert_eq!(manifest.shards.len(), 3);
        assert_eq!(manifest.n_train, ds.train_pairs.len());
        let mut rel_total = 0;
        for meta in &manifest.shards {
            let shard = read_shard(&dir.join(&meta.file)).expect("read");
            assert_eq!(shard.index, meta.index);
            assert_eq!(shard.src_range, meta.src_range);
            assert_eq!(shard.src_images.len(), meta.src_range.1 - meta.src_range.0);
            for &(orig, trip) in &shard.src_rel {
                assert_eq!(ds.source.rel_triples[orig], trip);
            }
            for (off, row) in shard.tgt_images.iter().enumerate() {
                assert_eq!(row, &ds.target.images[meta.tgt_range.0 + off]);
            }
            rel_total += shard.src_rel.len();
        }
        assert_eq!(rel_total, ds.source.rel_triples.len());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trips_and_checks_version() {
        let ds = small();
        let dir = tmpdir("manifest");
        let written = write_shards(&ds, &dir, 64).expect("write");
        let read = read_manifest(&dir).expect("read");
        assert_eq!(read, written);

        let mut bad = read.clone();
        bad.version = 2;
        write_manifest(&dir, &bad).expect("write v2");
        let err = read_manifest(&dir).unwrap_err();
        assert!(err.to_string().contains("unsupported shard format version 2"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_checksums_match_manifest() {
        let ds = small();
        let dir = tmpdir("checksums");
        let manifest = write_shards(&ds, &dir, 32).expect("write");
        for meta in &manifest.shards {
            let payload = read_verified(&dir.join(&meta.file)).expect("frame verifies");
            assert_eq!(payload.len() as u64, meta.payload_len);
            assert_eq!(desalign_util::checksum64(&payload), meta.checksum);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_bad_magic_and_trailing_bytes() {
        let ds = small();
        let dir = tmpdir("decode-rejects");
        let manifest = write_shards(&ds, &dir, 64).expect("write");
        let path = dir.join(&manifest.shards[0].file);
        let mut payload = read_verified(&path).expect("read");

        let mut wrong_magic = payload.clone();
        wrong_magic[0] ^= 0xFF;
        let err = decode_shard(&wrong_magic, "s").unwrap_err();
        assert!(err.to_string().contains("bad shard magic"), "{err}");

        payload.push(0);
        let err = decode_shard(&payload, "s").unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_count_fails_before_allocating() {
        let ds = small();
        let dir = tmpdir("hostile-count");
        let manifest = write_shards(&ds, &dir, 64).expect("write");
        let mut payload = read_verified(&dir.join(&manifest.shards[0].file)).expect("read");
        // Overwrite n_src_rel (header offset 48) with u64::MAX.
        payload[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_shard(&payload, "s").unwrap_err();
        assert!(err.to_string().contains("exceeds the"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_errors_carry_byte_offsets() {
        let ds = small();
        let dir = tmpdir("offsets");
        let manifest = write_shards(&ds, &dir, 64).expect("write");
        let payload = read_verified(&dir.join(&manifest.shards[0].file)).expect("read");
        let err = decode_shard(&payload[..SHARD_HEADER_LEN + 3], "shard-00000.bin").unwrap_err();
        assert!(err.to_string().contains("shard-00000.bin@byte"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn images_length_mismatch_is_normalized_on_write() {
        let mut ds = small();
        ds.source.images.truncate(ds.source.num_entities - 5);
        let dir = tmpdir("img-normalize");
        let manifest = write_shards(&ds, &dir, 1000).expect("write");
        let shard = read_shard(&dir.join(&manifest.shards[0].file)).expect("read");
        assert_eq!(shard.src_images.len(), ds.source.num_entities);
        assert!(shard.src_images[ds.source.num_entities - 1].is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_records_land_in_the_last_shard() {
        let mut ds = small();
        let n = ds.source.num_entities;
        ds.source.rel_triples.push((n + 100, 0, 1)); // dangling head
        ds.train_pairs.push((n + 3, 0)); // out-of-range pair
        let dir = tmpdir("oob");
        let manifest = write_shards(&ds, &dir, 32).expect("write");
        let last = read_shard(&dir.join(&manifest.shards.last().unwrap().file)).expect("read");
        assert!(last.src_rel.iter().any(|&(_, (h, _, _))| h == n + 100));
        assert!(last.train_pairs.iter().any(|&(_, (s, _))| s == n + 3));
        fs::remove_dir_all(&dir).ok();
    }
}
