//! The synthetic benchmark generator.
//!
//! See the crate docs for the generation model. Every preset mirrors one
//! Table I dataset: side-size ratio, relation/attribute vocabulary ratio,
//! degree, attribute density, image coverage, and EA-pair fraction are taken
//! from the published statistics; absolute scale is configurable (real
//! datasets are ~15–20 k entities per side; the default reproduction scale
//! is 1 000 on the larger side). Bilingual presets get higher structural and
//! attribute noise than monolingual ones, reflecting the heterogeneity the
//! paper discusses in §V-F.

use crate::shard::{
    bucket_records, encode_shard, range_of, shard_file_name, write_manifest, ShardManifest, ShardMeta, SideMeta,
    SHARD_FORMAT_VERSION,
};
use crate::stream::streaming_fingerprint;
use crate::{AlignmentDataset, Mmkg};
use desalign_tensor::{rng_from_seed, Rng64};
use desalign_tensor::SliceRandom;
use desalign_util::DesalignError;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The five benchmark pairs of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetSpec {
    /// FB15K–DB15K (monolingual).
    FbDb15k,
    /// FB15K–YAGO15K (monolingual).
    FbYg15k,
    /// DBP15K Chinese–English (bilingual).
    Dbp15kZhEn,
    /// DBP15K Japanese–English (bilingual).
    Dbp15kJaEn,
    /// DBP15K French–English (bilingual).
    Dbp15kFrEn,
}

impl DatasetSpec {
    /// All presets, in Table I order.
    pub const ALL: [DatasetSpec; 5] =
        [DatasetSpec::FbDb15k, DatasetSpec::FbYg15k, DatasetSpec::Dbp15kZhEn, DatasetSpec::Dbp15kJaEn, DatasetSpec::Dbp15kFrEn];

    /// Monolingual presets (used by Table II / Table IV).
    pub const MONOLINGUAL: [DatasetSpec; 2] = [DatasetSpec::FbDb15k, DatasetSpec::FbYg15k];

    /// Bilingual presets (used by Table III / Table V).
    pub const BILINGUAL: [DatasetSpec; 3] = [DatasetSpec::Dbp15kZhEn, DatasetSpec::Dbp15kJaEn, DatasetSpec::Dbp15kFrEn];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::FbDb15k => "FB15K-DB15K",
            DatasetSpec::FbYg15k => "FB15K-YAGO15K",
            DatasetSpec::Dbp15kZhEn => "DBP15K_ZH-EN",
            DatasetSpec::Dbp15kJaEn => "DBP15K_JA-EN",
            DatasetSpec::Dbp15kFrEn => "DBP15K_FR-EN",
        }
    }

    /// True for the DBP15K (bilingual) family.
    pub fn is_bilingual(&self) -> bool {
        matches!(self, DatasetSpec::Dbp15kZhEn | DatasetSpec::Dbp15kJaEn | DatasetSpec::Dbp15kFrEn)
    }
}

/// Full generator configuration. Use [`SynthConfig::preset`] then the
/// builder-style `with_*` methods; all fields stay public for custom
/// experiments.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Which Table I dataset this split mimics.
    pub spec: DatasetSpec,
    /// Entities per side `(source, target)`.
    pub entities: (usize, usize),
    /// Relation vocabulary per side.
    pub relations: (usize, usize),
    /// Attribute vocabulary per side.
    pub attributes: (usize, usize),
    /// Average structural degree per side (real degrees are capped for
    /// laptop-scale training; documented in DESIGN.md).
    pub avg_degree: (f32, f32),
    /// Mean attribute triples per entity per side.
    pub attrs_per_entity: (f32, f32),
    /// Fraction of entities with an image per side (Table I coverage).
    pub image_coverage: (f32, f32),
    /// Fraction of entities with ≥ 1 text attribute per side. Real KGs
    /// concentrate attribute triples on a minority of entities (FB15K has
    /// ~2 attribute triples per entity overall); this is the intrinsic
    /// semantic inconsistency of §I.
    pub text_coverage: (f32, f32),
    /// Gold alignments as a fraction of the smaller side.
    pub ea_pair_fraction: f32,
    /// Seed-alignment ratio `R_seed`.
    pub seed_ratio: f32,
    /// `R_img` robustness override: keep images for only this fraction of
    /// entities on both sides (Table III splits).
    pub image_ratio: Option<f32>,
    /// `R_tex` robustness override: keep text attributes for only this
    /// fraction of entities on both sides (Table II splits).
    pub text_ratio: Option<f32>,
    /// Fraction of per-view edges rewired randomly (bilingual > mono).
    pub structural_noise: f32,
    /// Probability a world attribute is dropped / replaced per view.
    pub attr_noise: f32,
    /// Per-view noise added to the simulated vision-encoder output
    /// (aligned entities get correlated but unequal image features).
    pub vision_noise: f32,
    /// Simulated vision-encoder output dimension (the paper's ResNet-152
    /// gives 2048; scaled down by default).
    pub vision_dim: usize,
    /// Latent world dimension driving all modalities.
    pub latent_dim: usize,
    /// Number of latent communities (`0` = auto: one per ~25 entities).
    pub communities: usize,
}

impl SynthConfig {
    /// The preset mirroring `spec`'s Table I row at the default scale
    /// (1 000 entities on the larger side).
    pub fn preset(spec: DatasetSpec) -> Self {
        // (side ratios, rel vocab, attr vocab, degree, attrs/entity,
        //  image coverage, pair fraction) from Table I; noise by family.
        let (sides, rels, attrs, deg, ape, img, tex, pairs) = match spec {
            DatasetSpec::FbDb15k => ((1.0, 0.859), (90, 19), (12, 22), (10.0, 6.0), (2.0, 3.7), (0.899, 0.999), (0.45, 0.65), 0.98),
            DatasetSpec::FbYg15k => ((0.97, 1.0), (90, 8), (12, 4), (10.0, 5.0), (2.0, 1.5), (0.899, 0.727), (0.45, 0.4), 0.75),
            DatasetSpec::Dbp15kZhEn => ((0.99, 1.0), (85, 66), (200, 180), (7.0, 9.0), (6.0, 8.0), (0.82, 0.72), (0.9, 0.9), 0.77),
            DatasetSpec::Dbp15kJaEn => ((1.0, 1.0), (65, 58), (150, 150), (8.0, 9.0), (6.0, 8.0), (0.643, 0.695), (0.9, 0.9), 0.757),
            DatasetSpec::Dbp15kFrEn => ((0.98, 1.0), (45, 60), (120, 160), (10.0, 11.0), (7.0, 9.0), (0.721, 0.693), (0.9, 0.9), 0.763),
        };
        // Monolingual noise is set higher than the raw Table I statistics
        // suggest: the real datasets draw their difficulty from 15–20 k
        // entity candidate pools, which laptop-scale graphs cannot provide;
        // extra per-view noise restores the paper's absolute accuracy
        // regime (H@1 ≈ 30–50 % at R_seed = 0.2). See DESIGN.md §1.
        let (noise_s, noise_a, vision_noise, seed) =
            if spec.is_bilingual() { (0.25, 0.35, 0.3, 0.3) } else { (0.25, 0.3, 0.55, 0.2) };
        let base = 1000.0f32;
        SynthConfig {
            spec,
            entities: ((base * sides.0) as usize, (base * sides.1) as usize),
            relations: rels,
            attributes: attrs,
            avg_degree: deg,
            attrs_per_entity: ape,
            image_coverage: img,
            text_coverage: tex,
            ea_pair_fraction: pairs,
            seed_ratio: seed,
            image_ratio: None,
            text_ratio: None,
            structural_noise: noise_s,
            attr_noise: noise_a,
            vision_noise,
            vision_dim: 64,
            latent_dim: 16,
            communities: 0,
        }
    }

    /// Rescales the preset so the larger side has `big_side` entities
    /// (vocabularies scale with the square root to keep them meaningful at
    /// small scale).
    pub fn scaled(mut self, big_side: usize) -> Self {
        let cur = self.entities.0.max(self.entities.1) as f32;
        let f = big_side as f32 / cur;
        let sf = f.sqrt();
        self.entities = (((self.entities.0 as f32) * f).round().max(8.0) as usize, ((self.entities.1 as f32) * f).round().max(8.0) as usize);
        self.relations = (((self.relations.0 as f32) * sf).round().max(2.0) as usize, ((self.relations.1 as f32) * sf).round().max(2.0) as usize);
        self.attributes = (((self.attributes.0 as f32) * sf).round().max(4.0) as usize, ((self.attributes.1 as f32) * sf).round().max(4.0) as usize);
        self
    }

    /// Sets `R_seed`.
    pub fn with_seed_ratio(mut self, r: f32) -> Self {
        assert!((0.0..=1.0).contains(&r), "seed ratio must be in [0,1]");
        self.seed_ratio = r;
        self
    }

    /// Sets the `R_img` robustness override.
    pub fn with_image_ratio(mut self, r: f32) -> Self {
        assert!((0.0..=1.0).contains(&r), "image ratio must be in [0,1]");
        self.image_ratio = Some(r);
        self
    }

    /// Sets the `R_tex` robustness override.
    pub fn with_text_ratio(mut self, r: f32) -> Self {
        assert!((0.0..=1.0).contains(&r), "text ratio must be in [0,1]");
        self.text_ratio = Some(r);
        self
    }

    /// Split display name, e.g. `FB15K-DB15K(seed=0.20,img=0.30)`.
    pub fn split_name(&self) -> String {
        let mut name = format!("{}(seed={:.2}", self.spec.name(), self.seed_ratio);
        if let Some(r) = self.image_ratio {
            name.push_str(&format!(",img={r:.2}"));
        }
        if let Some(r) = self.text_ratio {
            name.push_str(&format!(",tex={r:.2}"));
        }
        name.push(')');
        name
    }

    /// Generates a dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> AlignmentDataset {
        // The in-memory path is the streaming path with vec-backed image
        // sinks: both share `generate_core`, whose RNG draw order is
        // independent of where rows land, so `generate_sharded` produces
        // the bit-identical dataset.
        let mut src_images: Vec<Option<Vec<f32>>> = vec![None; self.entities.0];
        let mut tgt_images: Vec<Option<Vec<f32>>> = vec![None; self.entities.1];
        let mut ds = self.generate_core(
            seed,
            &mut |i, row| src_images[i] = Some(row),
            &mut |i, row| tgt_images[i] = Some(row),
        );
        ds.source.images = src_images;
        ds.target.images = tgt_images;
        debug_assert_eq!(ds.validate(), Ok(()));
        ds
    }

    /// Generates the dataset for `seed` **directly as a shard directory**,
    /// without ever materializing the feature matrices: image rows are
    /// spilled to scratch files as the generator draws them, then copied
    /// into shards one range at a time. The RNG stream is shared with
    /// [`Self::generate`], so the resulting directory assembles to the
    /// bit-identical dataset (same [`crate::dataset_fingerprint`], which
    /// is what the returned manifest records — computed by
    /// [`streaming_fingerprint`], never from a resident dataset).
    ///
    /// Peak feature memory is O(one shard); the latent world (integer
    /// records plus `latent_dim`-wide vectors, a fraction of
    /// `vision_dim`-wide feature rows) stays resident.
    pub fn generate_sharded(&self, seed: u64, dir: &Path, shard_entities: usize) -> Result<ShardManifest, DesalignError> {
        if shard_entities == 0 {
            return Err(DesalignError::config("shard_entities", "must be ≥ 1"));
        }
        let io_at = |p: &Path| {
            let loc = p.display().to_string();
            move |e: io::Error| DesalignError::io(loc.clone(), e)
        };
        std::fs::create_dir_all(dir).map_err(io_at(dir))?;

        // Spill files: raw little-endian f32 rows, located by an
        // (offset, dim) table per side. Offsets are O(n) words; rows —
        // the dominant cost — go straight to disk.
        let spill_paths = [dir.join(".spill-src.f32"), dir.join(".spill-tgt.f32")];
        let mut offsets: [Vec<Option<(u64, u32)>>; 2] =
            [vec![None; self.entities.0], vec![None; self.entities.1]];
        let ds = {
            let mut spill_err: [Option<io::Error>; 2] = [None, None];
            let mut writers = [
                (BufWriter::new(std::fs::File::create(&spill_paths[0]).map_err(io_at(&spill_paths[0]))?), 0u64),
                (BufWriter::new(std::fs::File::create(&spill_paths[1]).map_err(io_at(&spill_paths[1]))?), 0u64),
            ];
            let (w_src, w_tgt) = writers.split_at_mut(1);
            let (off_src, off_tgt) = offsets.split_at_mut(1);
            let (err_src, err_tgt) = spill_err.split_at_mut(1);
            let spill = |w: &mut (BufWriter<std::fs::File>, u64),
                             off: &mut Vec<Option<(u64, u32)>>,
                             err: &mut Option<io::Error>,
                             i: usize,
                             row: Vec<f32>| {
                if err.is_some() {
                    return;
                }
                off[i] = Some((w.1, row.len() as u32));
                for v in &row {
                    if let Err(e) = w.0.write_all(&v.to_bits().to_le_bytes()) {
                        *err = Some(e);
                        return;
                    }
                }
                w.1 += 4 * row.len() as u64;
            };
            let ds = self.generate_core(
                seed,
                &mut |i, row| spill(&mut w_src[0], &mut off_src[0], &mut err_src[0], i, row),
                &mut |i, row| spill(&mut w_tgt[0], &mut off_tgt[0], &mut err_tgt[0], i, row),
            );
            for (k, (w, _)) in writers.iter_mut().enumerate() {
                w.flush().map_err(io_at(&spill_paths[k]))?;
            }
            for (k, e) in spill_err.into_iter().enumerate() {
                if let Some(e) = e {
                    return Err(DesalignError::io(spill_paths[k].display().to_string(), e));
                }
            }
            ds
        };

        // Bucket the integer records (images in `ds` are all-None
        // placeholders; `bucket_records` never touches them) and encode
        // shard by shard, loading only that shard's rows from the spills.
        let (n_s, n_t) = (ds.source.num_entities, ds.target.num_entities);
        let num_shards = n_s.max(n_t).div_ceil(shard_entities).max(1);
        let buckets = bucket_records(&ds, shard_entities, num_shards);
        let mut spill_files = [
            std::fs::File::open(&spill_paths[0]).map_err(io_at(&spill_paths[0]))?,
            std::fs::File::open(&spill_paths[1]).map_err(io_at(&spill_paths[1]))?,
        ];
        let mut load_range = |side: usize, range: (usize, usize)| -> io::Result<Vec<Option<Vec<f32>>>> {
            let mut rows = Vec::with_capacity(range.1 - range.0);
            for e in range.0..range.1 {
                match offsets[side][e] {
                    None => rows.push(None),
                    Some((off, dim)) => {
                        let mut buf = vec![0u8; 4 * dim as usize];
                        spill_files[side].seek(SeekFrom::Start(off))?;
                        spill_files[side].read_exact(&mut buf)?;
                        rows.push(Some(
                            buf.chunks_exact(4).map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))).collect(),
                        ));
                    }
                }
            }
            Ok(rows)
        };
        let mut shards = Vec::with_capacity(num_shards);
        for (k, recs) in buckets.iter().enumerate() {
            let src_range = range_of(k, shard_entities, n_s);
            let tgt_range = range_of(k, shard_entities, n_t);
            let mut src_rows = load_range(0, src_range).map_err(io_at(&spill_paths[0]))?;
            let mut tgt_rows = load_range(1, tgt_range).map_err(io_at(&spill_paths[1]))?;
            let file = shard_file_name(k);
            let path = dir.join(&file);
            let (payload_len, checksum) = encode_shard(
                &path,
                k,
                src_range,
                tgt_range,
                recs,
                |e| src_rows[e - src_range.0].take(),
                |e| tgt_rows[e - tgt_range.0].take(),
            )
            .map_err(io_at(&path))?;
            shards.push(ShardMeta { file, index: k, src_range, tgt_range, payload_len, checksum });
        }
        for p in &spill_paths {
            std::fs::remove_file(p).map_err(io_at(p))?;
        }

        let mut manifest = ShardManifest {
            version: SHARD_FORMAT_VERSION,
            name: ds.name.clone(),
            dataset_fingerprint: 0,
            source: SideMeta {
                num_entities: n_s,
                num_relations: ds.source.num_relations,
                num_attributes: ds.source.num_attributes,
            },
            target: SideMeta {
                num_entities: n_t,
                num_relations: ds.target.num_relations,
                num_attributes: ds.target.num_attributes,
            },
            n_train: ds.train_pairs.len(),
            n_test: ds.test_pairs.len(),
            shard_entities,
            shards,
        };
        manifest.dataset_fingerprint = streaming_fingerprint(dir, &manifest)?;
        write_manifest(dir, &manifest)?;
        Ok(manifest)
    }

    /// The generator body shared by [`generate`] and [`generate_sharded`]:
    /// image rows leave through the per-side sinks (ascending view index
    /// per side, source first) and the returned dataset carries all-`None`
    /// image slots for the caller to fill or leave on disk.
    fn generate_core(
        &self,
        seed: u64,
        src_images_out: &mut dyn FnMut(usize, Vec<f32>),
        tgt_images_out: &mut dyn FnMut(usize, Vec<f32>),
    ) -> AlignmentDataset {
        let mut rng = rng_from_seed(seed ^ 0x9e37_79b9_7f4a_7c15);
        let (n_s, n_t) = self.entities;
        let n_pairs = ((n_s.min(n_t) as f32) * self.ea_pair_fraction).round() as usize;
        let n_pairs = n_pairs.min(n_s).min(n_t);
        let world_n = n_s + n_t - n_pairs;

        // --- latent world -------------------------------------------------
        let n_comm = if self.communities > 0 { self.communities } else { (world_n / 25).max(2) };
        let community: Vec<usize> = (0..world_n).map(|_| rng.gen_range(0..n_comm)).collect();
        let centers: Vec<Vec<f32>> =
            (0..n_comm).map(|_| (0..self.latent_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let latent: Vec<Vec<f32>> = (0..world_n)
            .map(|i| centers[community[i]].iter().map(|&c| c + 0.45 * gauss(&mut rng)).collect())
            .collect();

        // --- world structure ----------------------------------------------
        // Enough world edges that each view can subsample its target count.
        let max_deg = self.avg_degree.0.max(self.avg_degree.1);
        let world_edges_target = ((world_n as f32) * max_deg * 0.75) as usize;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_comm];
        for (i, &c) in community.iter().enumerate() {
            members[c].push(i);
        }
        let mut world_edges: Vec<(usize, usize, usize)> = Vec::with_capacity(world_edges_target);
        let rel_vocab_world = self.relations.0.max(self.relations.1);
        while world_edges.len() < world_edges_target {
            let u = rng.gen_range(0..world_n);
            let v = if rng.gen_bool(0.8) {
                // Intra-community edge (homophily drives SP's effectiveness).
                let peers = &members[community[u]];
                peers[rng.gen_range(0..peers.len())]
            } else {
                rng.gen_range(0..world_n)
            };
            if u != v {
                let r = zipf(&mut rng, rel_vocab_world);
                world_edges.push((u.min(v), r, u.max(v)));
            }
        }
        world_edges.sort_unstable();
        world_edges.dedup_by_key(|&mut (h, _, t)| (h, t));

        // --- world attributes -----------------------------------------------
        let attr_vocab_world = self.attributes.0.max(self.attributes.1);
        let max_ape = self.attrs_per_entity.0.max(self.attrs_per_entity.1);
        let mut world_attrs: Vec<(usize, usize)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // `i` is the entity id, also indexing `community`
        for i in 0..world_n {
            let k = poissonish(&mut rng, max_ape * 1.3);
            for _ in 0..k {
                // Community-biased attribute choice keeps text informative.
                let a = if rng.gen_bool(0.7) {
                    (community[i] * 13 + zipf(&mut rng, 8)) % attr_vocab_world
                } else {
                    zipf(&mut rng, attr_vocab_world)
                };
                world_attrs.push((i, a));
            }
        }

        // --- views ----------------------------------------------------------
        // Source = world [0, n_s); target = world [n_s − n_pairs, …); the
        // overlap range [n_s − n_pairs, n_s) is the gold alignment.
        let src_world: Vec<usize> = (0..n_s).collect();
        let tgt_world: Vec<usize> = (n_s - n_pairs..n_s - n_pairs + n_t).collect();
        let shared: Vec<usize> = (n_s - n_pairs..n_s).collect();

        let vision_proj: Vec<Vec<f32>> = (0..self.latent_dim)
            .map(|_| (0..self.vision_dim).map(|_| gauss(&mut rng) / (self.latent_dim as f32).sqrt()).collect())
            .collect();

        let source = self.build_view(&mut rng, &src_world, world_n, &world_edges, &world_attrs, &latent, &vision_proj, 0, src_images_out);
        let target = self.build_view(&mut rng, &tgt_world, world_n, &world_edges, &world_attrs, &latent, &vision_proj, 1, tgt_images_out);

        // --- alignments --------------------------------------------------------
        // View entity ids are the position of the world id in the view's
        // (shuffled) member list; build_view returns alongside.
        let (source_kg, src_map) = source;
        let (target_kg, tgt_map) = target;
        let mut pairs: Vec<(usize, usize)> = shared.iter().map(|&w| (src_map[w], tgt_map[w])).collect();
        pairs.shuffle(&mut rng);
        let n_train = ((pairs.len() as f32) * self.seed_ratio).round() as usize;
        let train_pairs = pairs[..n_train].to_vec();
        let test_pairs = pairs[n_train..].to_vec();

        AlignmentDataset { name: self.split_name(), source: source_kg, target: target_kg, train_pairs, test_pairs }
    }

    /// Builds one view KG. Returns the KG (image slots all `None` — rows
    /// leave through `images_out`) plus the world→view index map
    /// (usize::MAX for absent entities).
    #[allow(clippy::too_many_arguments)]
    fn build_view(
        &self,
        rng: &mut Rng64,
        view_world_ids: &[usize],
        world_n: usize,
        world_edges: &[(usize, usize, usize)],
        world_attrs: &[(usize, usize)],
        latent: &[Vec<f32>],
        vision_proj: &[Vec<f32>],
        side: usize,
        images_out: &mut dyn FnMut(usize, Vec<f32>),
    ) -> (Mmkg, Vec<usize>) {
        let n = view_world_ids.len();
        let (num_rel, num_attr, deg, ape, img_cov, tex_cov) = if side == 0 {
            (self.relations.0, self.attributes.0, self.avg_degree.0, self.attrs_per_entity.0, self.image_coverage.0, self.text_coverage.0)
        } else {
            (self.relations.1, self.attributes.1, self.avg_degree.1, self.attrs_per_entity.1, self.image_coverage.1, self.text_coverage.1)
        };

        // Shuffled world→view mapping so raw indices carry no signal.
        let mut order: Vec<usize> = view_world_ids.to_vec();
        order.shuffle(rng);
        let mut map = vec![usize::MAX; world_n];
        for (view_idx, &w) in order.iter().enumerate() {
            map[w] = view_idx;
        }

        // Structure: subsample projected world edges to the side's density,
        // then rewire a `structural_noise` fraction.
        let projected: Vec<(usize, usize, usize)> = world_edges
            .iter()
            .filter(|&&(h, _, t)| map[h] != usize::MAX && map[t] != usize::MAX)
            .map(|&(h, r, t)| (map[h], r % num_rel, map[t]))
            .collect();
        let target_edges = (((n as f32) * deg) / 2.0) as usize;
        let keep_p = (target_edges as f64 / projected.len().max(1) as f64).min(1.0);
        let mut rel_triples: Vec<(usize, usize, usize)> = Vec::with_capacity(target_edges);
        for &(h, r, t) in &projected {
            if rng.gen_bool(keep_p) {
                if rng.gen_bool(self.structural_noise as f64) {
                    // Rewire one endpoint: view-specific structural noise.
                    // A rewire that lands back on the head would create a
                    // self-loop; keep the original edge instead (same
                    // single RNG draw, so the stream is unchanged).
                    let t2 = rng.gen_range(0..n);
                    rel_triples.push((h, r, if t2 == h { t } else { t2 }));
                } else {
                    rel_triples.push((h, r, t));
                }
            }
        }
        // Rewiring can collide with an existing edge; drop exact duplicates
        // (first occurrence wins) so generated graphs pass a Strict audit.
        {
            let mut seen = std::collections::HashSet::with_capacity(rel_triples.len());
            rel_triples.retain(|&trip| seen.insert(trip));
        }

        // Attributes: only a `text_coverage` fraction of entities carry any
        // text at all (the intrinsic inconsistency of real KGs), then
        // inherit world attributes with dropout + noise.
        let mut covered = vec![false; n];
        {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            for &e in order.iter().take(((n as f32) * tex_cov).round() as usize) {
                covered[e] = true;
            }
        }
        let projected_attrs: Vec<(usize, usize)> = world_attrs
            .iter()
            .filter(|&&(e, _)| map[e] != usize::MAX && covered[map[e]])
            .map(|&(e, a)| (map[e], a % num_attr))
            .collect();
        let target_attrs = ((n as f32) * ape) as usize;
        let keep_p = ((target_attrs as f64) / (projected_attrs.len().max(1) as f64)).min(1.0);
        let mut attr_triples: Vec<(usize, usize)> = Vec::with_capacity(target_attrs);
        for &(e, a) in &projected_attrs {
            if rng.gen_bool(keep_p) {
                if rng.gen_bool(self.attr_noise as f64) {
                    attr_triples.push((e, zipf(rng, num_attr)));
                } else {
                    attr_triples.push((e, a));
                }
            }
        }

        // Images: project the latent through the shared "vision encoder",
        // add per-view noise; drop to coverage (or the R_img override).
        let coverage = self.image_ratio.unwrap_or(img_cov);
        let mut with_image: Vec<usize> = (0..n).collect();
        with_image.shuffle(rng);
        with_image.truncate(((n as f32) * coverage).round() as usize);
        let mut has_image = vec![false; n];
        for &e in &with_image {
            has_image[e] = true;
        }
        // Rows are emitted in ascending view index, matching both the
        // fingerprint's traversal order and the shard layout; the R_tex
        // shuffle below comes *after* every image draw, so routing rows to
        // a sink instead of a vec cannot perturb the RNG stream.
        for (view_idx, has) in has_image.iter().enumerate() {
            if !has {
                continue;
            }
            let w = order[view_idx];
            let z = &latent[w];
            let mut v: Vec<f32> = (0..self.vision_dim)
                .map(|d| {
                    let mut s = 0.0f32;
                    for (k, &zk) in z.iter().enumerate() {
                        s += zk * vision_proj[k][d];
                    }
                    s + self.vision_noise * gauss(rng)
                })
                .collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut v {
                *x /= norm;
            }
            images_out(view_idx, v);
        }

        // R_tex override: keep text for only that fraction of entities.
        if let Some(r) = self.text_ratio {
            let mut keep: Vec<usize> = (0..n).collect();
            keep.shuffle(rng);
            keep.truncate(((n as f32) * r).round() as usize);
            let keep_set: Vec<bool> = {
                let mut k = vec![false; n];
                for &e in &keep {
                    k[e] = true;
                }
                k
            };
            attr_triples.retain(|&(e, _)| keep_set[e]);
        }

        let kg = Mmkg { num_entities: n, num_relations: num_rel, num_attributes: num_attr, rel_triples, attr_triples, images: vec![None; n] };
        (kg, map)
    }
}

/// Standard-normal sample via Box–Muller.
fn gauss(rng: &mut Rng64) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Zipf-like sample over `0..n` (heavier mass on small ids), matching the
/// long-tailed relation/attribute frequencies of real KGs.
fn zipf(rng: &mut Rng64, n: usize) -> usize {
    let u: f32 = rng.gen_range(0.0f32..1.0);
    let x = (n as f32).powf(u) - 1.0;
    (x as usize).min(n.saturating_sub(1))
}

/// Cheap Poisson-ish sample with the given mean (sum of Bernoullis).
fn poissonish(rng: &mut Rng64, mean: f32) -> usize {
    let trials = (mean * 3.0).ceil().max(1.0) as usize;
    let p = (mean / trials as f32).clamp(0.0, 1.0) as f64;
    (0..trials).filter(|_| rng.gen_bool(p)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(150);
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.source.rel_triples, b.source.rel_triples);
        assert_eq!(a.train_pairs, b.train_pairs);
        let c = cfg.generate(8);
        assert_ne!(a.train_pairs, c.train_pairs);
    }

    #[test]
    fn sharded_generation_matches_in_memory_bit_for_bit() {
        let cfg = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(120).with_image_ratio(0.5);
        let ds = cfg.generate(21);
        let dir = std::env::temp_dir().join("desalign-synth-sharded-test");
        std::fs::remove_dir_all(&dir).ok();
        let manifest = cfg.generate_sharded(21, &dir, 50).expect("sharded generate");
        assert_eq!(manifest.dataset_fingerprint, crate::dataset_fingerprint(&ds), "streamed generator must match in-memory");
        let assembled = manifest.to_dataset(&dir).expect("assemble");
        assert_eq!(assembled.source.images, ds.source.images);
        assert_eq!(assembled.target.rel_triples, ds.target.rel_triples);
        assert_eq!(assembled.train_pairs, ds.train_pairs);
        assert!(!dir.join(".spill-src.f32").exists(), "spill files must be cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn presets_respect_side_ratios() {
        let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(400);
        let ds = cfg.generate(1);
        assert_eq!(ds.source.num_entities, 400);
        // DB15K side is ~86 % of FB15K.
        let ratio = ds.target.num_entities as f32 / ds.source.num_entities as f32;
        assert!((ratio - 0.859).abs() < 0.02, "ratio {ratio}");
        assert_eq!(ds.validate(), Ok(()));
    }

    #[test]
    fn seed_ratio_controls_split() {
        for r in [0.1f32, 0.5, 0.8] {
            let cfg = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(200).with_seed_ratio(r);
            let ds = cfg.generate(3);
            assert!((ds.seed_ratio() - r).abs() < 0.05, "want {r}, got {}", ds.seed_ratio());
        }
    }

    #[test]
    fn image_ratio_override_controls_coverage() {
        let cfg = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(200).with_image_ratio(0.3);
        let ds = cfg.generate(5);
        let cov_s = ds.source.num_images() as f32 / ds.source.num_entities as f32;
        let cov_t = ds.target.num_images() as f32 / ds.target.num_entities as f32;
        assert!((cov_s - 0.3).abs() < 0.05, "source coverage {cov_s}");
        assert!((cov_t - 0.3).abs() < 0.05, "target coverage {cov_t}");
    }

    #[test]
    fn text_ratio_override_limits_attributed_entities() {
        let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(200).with_text_ratio(0.25);
        let ds = cfg.generate(9);
        let frac = ds.source.entities_with_attributes().iter().filter(|&&b| b).count() as f32 / ds.source.num_entities as f32;
        assert!(frac <= 0.27, "attributed fraction {frac} should be ≤ R_tex");
    }

    #[test]
    fn aligned_entities_share_structure_signal() {
        // Gold-aligned entities should have correlated neighbourhoods: count
        // how often an aligned pair shares at least one aligned neighbour
        // pair; this must beat chance by a wide margin.
        let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(300);
        let ds = cfg.generate(11);
        let mut t_of_s = vec![usize::MAX; ds.source.num_entities];
        for &(s, t) in ds.train_pairs.iter().chain(&ds.test_pairs) {
            t_of_s[s] = t;
        }
        let mut s_adj = vec![Vec::new(); ds.source.num_entities];
        for &(h, _, t) in &ds.source.rel_triples {
            s_adj[h].push(t);
            s_adj[t].push(h);
        }
        let mut t_adj = vec![std::collections::HashSet::new(); ds.target.num_entities];
        for &(h, _, t) in &ds.target.rel_triples {
            t_adj[h].insert(t);
            t_adj[t].insert(h);
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for &(s, t) in &ds.test_pairs {
            total += 1;
            let matched = s_adj[s].iter().any(|&nb| {
                let tn = t_of_s[nb];
                tn != usize::MAX && t_adj[t].contains(&tn)
            });
            if matched {
                hits += 1;
            }
        }
        let frac = hits as f32 / total.max(1) as f32;
        assert!(frac > 0.3, "aligned pairs share neighbours only {frac} of the time");
    }

    #[test]
    fn bilingual_presets_are_noisier() {
        // Bilingual noise exceeds monolingual on the attribute channel;
        // structural noise is matched (the monolingual difficulty boost —
        // see the preset comment) and vision noise is *lower* bilingual.
        let mono = SynthConfig::preset(DatasetSpec::FbDb15k);
        let bi = SynthConfig::preset(DatasetSpec::Dbp15kZhEn);
        assert!(bi.attr_noise > mono.attr_noise);
        assert!(bi.structural_noise >= mono.structural_noise);
        assert!(bi.vision_noise < mono.vision_noise);
    }

    #[test]
    fn split_names_encode_overrides() {
        let cfg = SynthConfig::preset(DatasetSpec::Dbp15kJaEn).with_image_ratio(0.4);
        assert!(cfg.split_name().contains("img=0.40"));
        assert!(cfg.split_name().contains("DBP15K_JA-EN"));
    }

    #[test]
    fn stats_are_plausible() {
        let cfg = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(300);
        let ds = cfg.generate(13);
        let s = ds.source.stats();
        // Degree close to the configured target.
        let deg = 2.0 * s.rel_triples as f32 / s.entities as f32;
        assert!(deg > 5.0 && deg < 14.0, "degree {deg}");
        assert!(s.attr_triples > s.entities, "text should be dense on DBP15K");
    }
}
