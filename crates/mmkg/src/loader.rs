//! Dataset (de)serialization so experiment splits are reproducible
//! byte-for-byte and shareable between binaries.
//!
//! The on-disk shape is the one the earlier serde-derive implementation
//! produced (structs as objects, tuples as arrays), so files written by
//! previous builds keep loading.

use crate::{AlignmentDataset, Mmkg};
use desalign_util::{json, DesalignError, FromJson, Json, JsonError, ToJson};
#[cfg(test)]
use desalign_util::DefectClass;
use std::fs;
use std::io;
use std::path::Path;

impl ToJson for Mmkg {
    fn to_json(&self) -> Json {
        json!({
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "num_attributes": self.num_attributes,
            "rel_triples": self.rel_triples,
            "attr_triples": self.attr_triples,
            "images": self.images,
        })
    }
}

impl FromJson for Mmkg {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Mmkg {
            num_entities: v.field("num_entities")?,
            num_relations: v.field("num_relations")?,
            num_attributes: v.field("num_attributes")?,
            rel_triples: v.field("rel_triples")?,
            attr_triples: v.field("attr_triples")?,
            images: v.field("images")?,
        })
    }
}

impl ToJson for AlignmentDataset {
    fn to_json(&self) -> Json {
        json!({
            "name": self.name,
            "source": self.source,
            "target": self.target,
            "train_pairs": self.train_pairs,
            "test_pairs": self.test_pairs,
        })
    }
}

impl FromJson for AlignmentDataset {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AlignmentDataset {
            name: v.field("name")?,
            source: v.field("source")?,
            target: v.field("target")?,
            train_pairs: v.field("train_pairs")?,
            test_pairs: v.field("test_pairs")?,
        })
    }
}

/// Saves a dataset as compact JSON.
pub fn save_dataset_json(ds: &AlignmentDataset, path: &Path) -> io::Result<()> {
    fs::write(path, ds.to_json().to_string())
}

/// Loads a dataset saved with [`save_dataset_json`], validating it.
///
/// Every failure is a typed [`DesalignError`] whose class names what went
/// wrong: [`Io`](desalign_util::DefectClass::Io) (unreadable file),
/// [`Parse`](desalign_util::DefectClass::Parse) (not JSON),
/// [`Schema`](desalign_util::DefectClass::Schema) (JSON of the wrong shape), or the
/// structural defect class [`AlignmentDataset::validate`] found (dangling
/// endpoint, out-of-range pair, …). The file path is attached as the
/// outermost location; parse failures name the byte offset of the first
/// bad character (`json@byte N`) so corruption reports are actionable.
pub fn load_dataset_json(path: &Path) -> Result<AlignmentDataset, DesalignError> {
    // Each failure keeps its own defect class at the outermost level (so
    // callers can match on it) while the file path becomes the location.
    let at = |e: DesalignError| {
        let class = e.class;
        e.wrap(class, path.display().to_string(), "cannot load dataset")
    };
    let json = fs::read_to_string(path).map_err(|e| DesalignError::io(path.display().to_string(), e))?;
    let doc = Json::parse(&json).map_err(|e| at(DesalignError::parse(format!("json@byte {}", e.offset), e)))?;
    let ds = AlignmentDataset::from_json(&doc).map_err(|e| at(DesalignError::schema("json", e)))?;
    ds.validate().map_err(at)?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, SynthConfig};

    #[test]
    fn round_trip_preserves_dataset() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(1);
        let dir = std::env::temp_dir().join("desalign-loader-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("ds.json");
        save_dataset_json(&ds, &path).expect("save");
        let loaded = load_dataset_json(&path).expect("load");
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.source.rel_triples, ds.source.rel_triples);
        assert_eq!(loaded.source.images, ds.source.images);
        assert_eq!(loaded.test_pairs, ds.test_pairs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupt_data() {
        let dir = std::env::temp_dir().join("desalign-loader-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"not\": \"a dataset\"}").expect("write");
        assert!(load_dataset_json(&path).is_err());
        let path2 = dir.join("garbage.json");
        std::fs::write(&path2, "{\"name\": trailing").expect("write");
        assert!(load_dataset_json(&path2).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn load_errors_carry_the_defect_class() {
        let dir = std::env::temp_dir().join("desalign-loader-test");
        std::fs::create_dir_all(&dir).expect("tempdir");

        // Missing file → Io.
        let e = load_dataset_json(&dir.join("no-such-file.json")).unwrap_err();
        assert_eq!(e.class, DefectClass::Io);

        // Not JSON → Parse, with the byte offset of the first bad
        // character in the root-cause location.
        let p = dir.join("notjson.json");
        std::fs::write(&p, "][").expect("write");
        let e = load_dataset_json(&p).unwrap_err();
        assert_eq!(e.class, DefectClass::Parse);
        assert!(e.root_cause().location.contains("@byte 0"), "{e}");

        // Corruption mid-file names the offset where parsing stopped.
        let p_mid = dir.join("midfile.json");
        std::fs::write(&p_mid, "{\"name\": \"x\", \"source\": !!}").expect("write");
        let e = load_dataset_json(&p_mid).unwrap_err();
        assert_eq!(e.class, DefectClass::Parse);
        assert!(e.root_cause().location.contains("json@byte 24"), "{e}");
        std::fs::remove_file(&p_mid).ok();

        // Valid JSON, wrong shape → Schema.
        let p2 = dir.join("wrongshape.json");
        std::fs::write(&p2, "{\"name\": \"x\"}").expect("write");
        let e = load_dataset_json(&p2).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);

        // Structurally broken dataset → the structural defect class, with
        // the inner location preserved in the cause chain.
        let mut ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(40).generate(2);
        ds.source.rel_triples.push((0, 0, ds.source.num_entities + 7));
        let p3 = dir.join("dangling.json");
        std::fs::write(&p3, ds.to_json().to_string()).expect("write");
        let e = load_dataset_json(&p3).unwrap_err();
        assert_eq!(e.class, DefectClass::DanglingEndpoint);
        assert!(e.root_cause().location.contains("source.rel_triples"), "{e}");

        for p in [p, p2, p3] {
            std::fs::remove_file(&p).ok();
        }
    }
}
