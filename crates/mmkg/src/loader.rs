//! Dataset (de)serialization so experiment splits are reproducible
//! byte-for-byte and shareable between binaries.

use crate::AlignmentDataset;
use std::fs;
use std::io;
use std::path::Path;

/// Saves a dataset as pretty JSON.
pub fn save_dataset_json(ds: &AlignmentDataset, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(ds).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads a dataset saved with [`save_dataset_json`], validating it.
pub fn load_dataset_json(path: &Path) -> io::Result<AlignmentDataset> {
    let json = fs::read_to_string(path)?;
    let ds: AlignmentDataset = serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    ds.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid dataset: {e}")))?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, SynthConfig};

    #[test]
    fn round_trip_preserves_dataset() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(1);
        let dir = std::env::temp_dir().join("desalign-loader-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("ds.json");
        save_dataset_json(&ds, &path).expect("save");
        let loaded = load_dataset_json(&path).expect("load");
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.source.rel_triples, ds.source.rel_triples);
        assert_eq!(loaded.test_pairs, ds.test_pairs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupt_data() {
        let dir = std::env::temp_dir().join("desalign-loader-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"not\": \"a dataset\"}").expect("write");
        assert!(load_dataset_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
