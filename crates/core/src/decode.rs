//! Alternative decoding strategies on top of the similarity matrix.
//!
//! The paper evaluates with plain cosine ranking; two refinements are
//! provided as drop-in post-processing:
//!
//! - [`csls_decode`] — CSLS hubness correction (standard in the EA
//!   literature; the paper's related work applies it);
//! - [`gradient_flow_decode`] — the energy-gradient-flow decoding of the
//!   authors' companion work (reference 19 of the paper, "Gradient Flow
//!   of Energy: a general and efficient approach for entity alignment
//!   decoding"): the similarity matrix itself is treated as a feature
//!   field over each graph and evolved by the same `x ← Ãx` flow used by
//!   Semantic Propagation, mixing neighbourhood consensus into the
//!   pairwise scores.

use desalign_eval::{csls_rescale, try_csls_rescale, SimilarityMatrix};
use desalign_graph::{propagate_features, Csr, PropagationConfig};

/// CSLS re-scoring with the standard `k = 10` neighbourhood. The
/// neighbourhood is silently clamped on matrices smaller than 10×10; use
/// [`csls_decode_with`] to reject degenerate sizes instead.
pub fn csls_decode(sim: &SimilarityMatrix) -> SimilarityMatrix {
    csls_rescale(sim, 10)
}

/// CSLS re-scoring with an explicit, validated neighbourhood size (wire
/// `DesalignConfig::retrieval.csls_k` here).
///
/// # Errors
/// `DefectClass::Config` when `k` is zero or exceeds either side of the
/// matrix — the cases [`csls_decode`] silently clamps.
pub fn csls_decode_with(sim: &SimilarityMatrix, k: usize) -> Result<SimilarityMatrix, desalign_util::DesalignError> {
    try_csls_rescale(sim, k)
}

/// Gradient-flow decoding: evolves the similarity matrix `Ω` along both
/// graphs' Dirichlet-energy gradient flows and averages the states.
///
/// One round applies `Ω ← ½(Ã_s Ω + (Ã_t Ωᵀ)ᵀ)`, i.e. a smoothing step
/// over source rows and target columns; `blend` mixes the evolved matrix
/// with the original (`0` = no change, `1` = fully evolved).
pub fn gradient_flow_decode(
    sim: &SimilarityMatrix,
    adj_s: &Csr,
    adj_t: &Csr,
    rounds: usize,
    blend: f32,
) -> SimilarityMatrix {
    assert!((0.0..=1.0).contains(&blend), "gradient_flow_decode: blend {blend} out of [0,1]");
    let (n_s, n_t) = sim.shape();
    assert_eq!(adj_s.rows(), n_s, "gradient_flow_decode: Ã_s is {}x{}, Ω has {n_s} rows", adj_s.rows(), adj_s.cols());
    assert_eq!(adj_t.rows(), n_t, "gradient_flow_decode: Ã_t is {}x{}, Ω has {n_t} cols", adj_t.rows(), adj_t.cols());
    if rounds == 0 || blend == 0.0 {
        return SimilarityMatrix::new(sim.scores().clone());
    }
    let cfg = PropagationConfig { iterations: rounds, step: 1.0, reset_known: false };
    let no_boundary_s = vec![false; n_s];
    let no_boundary_t = vec![false; n_t];
    // Rows: smooth over the source graph.
    let rows = propagate_features(adj_s, sim.scores(), &no_boundary_s, &cfg)
        .pop()
        .expect("propagate_features returns ≥ 1 state");
    // Columns: smooth over the target graph (via the transpose).
    let cols_t = propagate_features(adj_t, &rows.transpose(), &no_boundary_t, &cfg)
        .pop()
        .expect("propagate_features returns ≥ 1 state");
    let evolved = cols_t.transpose();
    let mixed = sim.scores().scale(1.0 - blend).add(&evolved.scale(blend));
    SimilarityMatrix::new(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_eval::evaluate_ranking;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::{normal_matrix, rng_from_seed, Matrix};

    fn ring_adj(n: usize) -> Csr {
        UndirectedGraph::new(n, (0..n).map(|i| (i, (i + 1) % n))).normalized_adjacency(true)
    }

    #[test]
    fn zero_rounds_or_blend_is_identity() {
        let mut rng = rng_from_seed(1);
        let sim = SimilarityMatrix::new(normal_matrix(&mut rng, 5, 5, 0.0, 1.0));
        let a = ring_adj(5);
        assert_eq!(gradient_flow_decode(&sim, &a, &a, 0, 0.5).scores(), sim.scores());
        assert_eq!(gradient_flow_decode(&sim, &a, &a, 2, 0.0).scores(), sim.scores());
    }

    #[test]
    fn flow_recovers_a_corrupted_diagonal_entry() {
        // A diagonal similarity with one wrecked entry: neighbourhood
        // consensus from the flow restores the correct match.
        let n = 8;
        let mut scores = Matrix::full(n, n, 0.0);
        for i in 0..n {
            scores[(i, i)] = 1.0;
        }
        scores[(3, 3)] = -0.2; // corrupted
        scores[(3, 6)] = 0.3; // misleading alternative
        let sim = SimilarityMatrix::new(scores);
        let a = ring_adj(n);
        // Full blend: rely entirely on the two-sided neighbourhood
        // consensus, which sees the intact diagonals of entities 2 and 4.
        let decoded = gradient_flow_decode(&sim, &a, &a, 1, 1.0);
        // Entity 3's gold target climbs from rank > 1 to rank 1: the
        // two-sided flow sees the intact diagonals of its neighbours 2, 4.
        assert!(sim.rank_of(3, 3) > 1, "premise: entity 3 starts broken");
        assert_eq!(decoded.rank_of(3, 3), 1, "flow should fix entity 3");
        // Sanity: the decoded matrix still ranks *some* entities and the
        // harness metrics stay well-defined.
        let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        let after = evaluate_ranking(&decoded, &pairs);
        assert!(after.mrr > 0.0);
    }

    #[test]
    fn csls_decode_preserves_shape() {
        let mut rng = rng_from_seed(2);
        let sim = SimilarityMatrix::new(normal_matrix(&mut rng, 4, 6, 0.0, 1.0));
        let out = csls_decode(&sim);
        assert_eq!(out.shape(), (4, 6));
        assert!(out.scores().all_finite());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn blend_is_validated() {
        let sim = SimilarityMatrix::new(Matrix::zeros(2, 2));
        let a = ring_adj(2);
        let _ = gradient_flow_decode(&sim, &a, &a, 1, 1.5);
    }
}
