//! DESAlign — Dirichlet Energy driven Semantic-consistent multi-modal
//! entity ALIGNment (the paper's primary contribution).
//!
//! The model has three pillars, mapped one-to-one onto modules:
//!
//! 1. **Multi-modal knowledge graph representation** (§IV-A) —
//!    [`encoder`]: a GAT structure branch (Eq. 7), per-modality FC branches
//!    (Eq. 8), and a stack of Cross-modal Attention Weighted blocks with
//!    modal confidences (Eq. 9–13), yielding the early-fusion `h^Ori` and
//!    late-fusion `h^Fus` joint embeddings (Eq. 14).
//! 2. **Multi-modal semantic learning** (§IV-B) — [`loss`]: the
//!    contrastive alignment objectives `ℒ_task` / `ℒ_m` with
//!    min-confidence weighting (Eq. 16–17) and the Dirichlet-energy
//!    constraints of Proposition 3 enforced as soft penalties, which is
//!    what prevents the over-smoothing collapse of Proposition 2.
//! 3. **Semantic propagation** (§IV-C) — [`propagate`]: missing-modality
//!    interpolation by explicit-Euler gradient flow of the Dirichlet energy
//!    (Eq. 20–22), with the similarity averaged over propagation rounds
//!    (Algorithm 1).
//!
//! [`DesalignModel`] wires these together behind a `fit` / `evaluate` API;
//! [`iterative`] adds the bootstrapping pseudo-seed strategy used for the
//! "Iterative" table rows. The loop itself lives in [`trainer`], split
//! into begin/epochs/end phases with a divergence watchdog, and
//! [`checkpoint`] persists the full training state crash-safely with
//! bit-identical resume (see `docs/RELIABILITY.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod decode;
pub mod encoder;
pub mod energy;
pub mod iterative;
pub mod loss;
pub mod model;
pub mod propagate;
pub mod sampled;
pub mod train;
pub mod trainer;

pub use checkpoint::{config_digest, dataset_digest, CHECKPOINT_FORMAT, CHECKPOINT_VERSION};
pub use config::{
    Ablation, DesalignConfig, RetrievalBackend, RetrievalSettings, SampledTrainingSettings, StructureEncoderKind,
    WatchdogConfig,
};
pub use decode::{csls_decode, csls_decode_with, gradient_flow_decode};
pub use encoder::{EncodedGraph, MultiModalEncoder, Modality};
pub use energy::{EnergyDiagnostics, EnergyTrace};
pub use iterative::{iterative_fit, IterativeConfig, IterativeReport};
pub use loss::LossBreakdown;
pub use model::DesalignModel;
pub use train::TrainReport;
pub use trainer::{ChaosPlan, TrainState};
pub use propagate::{per_modality_propagation_similarity, semantic_propagation_similarity};
