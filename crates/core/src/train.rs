//! The training loop of Algorithm 1 (lines 3–10).

use crate::loss::LossBreakdown;
use desalign_tensor::Rng64;
use desalign_tensor::SliceRandom;

/// Summary of one `fit` call.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Epochs actually run (may stop early).
    pub epochs_run: usize,
    /// Final-epoch loss breakdown.
    pub final_loss: LossBreakdown,
    /// Per-epoch loss breakdowns.
    pub loss_history: Vec<LossBreakdown>,
    /// Energy traces sampled every `eval_every` epochs.
    pub energy_history: Vec<crate::energy::EnergyTrace>,
    /// Best validation H@1 seen (0 when no validation split is used).
    pub best_val_h1: f32,
    /// Watchdog rollbacks performed during this run (see
    /// `crate::trainer` and `docs/RELIABILITY.md`).
    pub rollbacks: u64,
    /// Wall-clock seconds spent in `fit`.
    pub seconds: f64,
}

impl TrainReport {
    /// True if the total loss decreased from the first to the last epoch.
    pub fn loss_decreased(&self) -> bool {
        match (self.loss_history.first(), self.loss_history.last()) {
            (Some(first), Some(last)) => last.total < first.total,
            _ => false,
        }
    }
}

/// Samples a contrastive batch of at most `batch_size` pairs. When the pool
/// is smaller the whole pool is used (full-batch); otherwise sampling is
/// without replacement — the in-batch negative strategy of Eq. 16.
pub fn sample_batch(pairs: &[(usize, usize)], batch_size: usize, rng: &mut Rng64) -> Vec<(usize, usize)> {
    if pairs.len() <= batch_size {
        return pairs.to_vec();
    }
    let mut idx: Vec<usize> = (0..pairs.len()).collect();
    idx.shuffle(rng);
    idx[..batch_size].iter().map(|&i| pairs[i]).collect()
}

/// A train/validation split of seed pairs.
pub type PairSplit = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Splits seed pairs into train/validation for early stopping.
/// `val_frac = 0` disables validation (everything trains).
pub fn train_val_split(pairs: &[(usize, usize)], val_frac: f32, rng: &mut Rng64) -> PairSplit {
    if val_frac <= 0.0 || pairs.len() < 10 {
        return (pairs.to_vec(), Vec::new());
    }
    let mut shuffled = pairs.to_vec();
    shuffled.shuffle(rng);
    let n_val = ((pairs.len() as f32) * val_frac).round().max(1.0) as usize;
    let val = shuffled[..n_val].to_vec();
    let train = shuffled[n_val..].to_vec();
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::rng_from_seed;

    fn pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, i)).collect()
    }

    #[test]
    fn small_pool_is_full_batch() {
        let p = pairs(5);
        let batch = sample_batch(&p, 10, &mut rng_from_seed(1));
        assert_eq!(batch, p);
    }

    #[test]
    fn sampling_is_without_replacement() {
        let p = pairs(100);
        let batch = sample_batch(&p, 30, &mut rng_from_seed(2));
        assert_eq!(batch.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for &(s, _) in &batch {
            assert!(seen.insert(s), "duplicate pair in batch");
        }
    }

    #[test]
    fn split_respects_fraction_and_partition() {
        let p = pairs(50);
        let (train, val) = train_val_split(&p, 0.2, &mut rng_from_seed(3));
        assert_eq!(val.len(), 10);
        assert_eq!(train.len(), 40);
        let all: std::collections::HashSet<_> = train.iter().chain(&val).collect();
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn tiny_pools_skip_validation() {
        let p = pairs(5);
        let (train, val) = train_val_split(&p, 0.2, &mut rng_from_seed(4));
        assert!(val.is_empty());
        assert_eq!(train.len(), 5);
    }

    #[test]
    fn report_loss_decrease_detection() {
        let mut r = TrainReport::default();
        assert!(!r.loss_decreased());
        r.loss_history.push(LossBreakdown { total: 2.0, ..Default::default() });
        r.loss_history.push(LossBreakdown { total: 1.0, ..Default::default() });
        assert!(r.loss_decreased());
    }
}
