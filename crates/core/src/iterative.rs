//! The iterative (bootstrapping) training strategy (§V-A2).
//!
//! Following the protocol of MCLEA that the paper adopts, a "temporary
//! cache" of cross-graph **mutual nearest** entity pairs from the unaligned
//! pool is mined after each training stage and injected as pseudo seeds for
//! the next stage. The cache is rebuilt from scratch every round — this is
//! the *alignment editing* step that discards stale pseudo pairs and keeps
//! error accumulation down (§V-A4, following BootEA).

use crate::config::DesalignConfig;
use crate::model::DesalignModel;
use desalign_eval::AlignmentMetrics;
use desalign_mmkg::AlignmentDataset;

/// Knobs of the iterative strategy.
#[derive(Clone, Copy, Debug)]
pub struct IterativeConfig {
    /// Number of mine-and-retrain rounds after the base fit (paper: the
    /// iterative variant trains "another 500 epochs"; we default to 2
    /// rounds of `epochs` each).
    pub rounds: usize,
    /// Cap on pseudo pairs admitted per round (0 = unlimited).
    pub max_new_pairs: usize,
    /// Minimum cosine similarity for an admitted pseudo pair.
    pub min_score: f32,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        Self { rounds: 2, max_new_pairs: 0, min_score: 0.5 }
    }
}

/// Outcome of one iterative round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round index (0 = base training).
    pub round: usize,
    /// Pseudo pairs in use during this round.
    pub pseudo_pairs: usize,
    /// Of those, how many agree with a gold alignment (diagnostic only —
    /// gold test labels are never used for training).
    pub pseudo_correct: usize,
    /// Watchdog rollbacks during this round's training stage.
    pub rollbacks: u64,
    /// Test metrics at the end of the round.
    pub metrics: AlignmentMetrics,
}

/// Full iterative-training report.
#[derive(Clone, Debug)]
pub struct IterativeReport {
    /// Per-round outcomes, starting with the base (non-iterative) fit.
    pub rounds: Vec<RoundReport>,
}

impl IterativeReport {
    /// Final metrics (last round).
    pub fn final_metrics(&self) -> AlignmentMetrics {
        self.rounds.last().map(|r| r.metrics).unwrap_or_default()
    }

    /// Metrics of the base fit before any bootstrapping.
    pub fn base_metrics(&self) -> AlignmentMetrics {
        self.rounds.first().map(|r| r.metrics).unwrap_or_default()
    }
}

/// Trains DESAlign with the iterative strategy and returns the final model
/// plus the per-round report.
pub fn iterative_fit(
    cfg: DesalignConfig,
    it_cfg: IterativeConfig,
    dataset: &AlignmentDataset,
    seed: u64,
) -> (DesalignModel, IterativeReport) {
    let mut model = DesalignModel::new(cfg, dataset, seed);
    let mut rounds = Vec::with_capacity(it_cfg.rounds + 1);

    let base = model.fit(dataset);
    rounds.push(RoundReport {
        round: 0,
        pseudo_pairs: 0,
        pseudo_correct: 0,
        rollbacks: base.rollbacks,
        metrics: model.evaluate(dataset),
    });

    // Gold map for the pseudo-pair precision diagnostic.
    let mut gold = std::collections::HashMap::new();
    for &(s, t) in dataset.train_pairs.iter().chain(&dataset.test_pairs) {
        gold.insert(s, t);
    }

    for round in 1..=it_cfg.rounds {
        // Candidate pools: entities not covered by gold seeds.
        let seeded_s: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(s, _)| s).collect();
        let seeded_t: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(_, t)| t).collect();
        let cand_s: Vec<usize> = (0..dataset.source.num_entities).filter(|s| !seeded_s.contains(s)).collect();
        let cand_t: Vec<usize> = (0..dataset.target.num_entities).filter(|t| !seeded_t.contains(t)).collect();

        let mut mined = model.mine_pseudo_pairs(&cand_s, &cand_t, it_cfg.min_score);
        if it_cfg.max_new_pairs > 0 {
            mined.truncate(it_cfg.max_new_pairs);
        }
        // Alignment editing: the cache is replaced, not appended to.
        model.pseudo_pairs = mined.iter().map(|&(s, t, _)| (s, t)).collect();
        let pseudo_correct = model.pseudo_pairs.iter().filter(|&&(s, t)| gold.get(&s) == Some(&t)).count();

        let stage = model.fit(dataset);
        rounds.push(RoundReport {
            round,
            pseudo_pairs: model.pseudo_pairs.len(),
            pseudo_correct,
            rollbacks: stage.rollbacks,
            metrics: model.evaluate(dataset),
        });
    }

    (model, IterativeReport { rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    fn tiny_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 10;
        cfg.batch_size = 64;
        cfg
    }

    #[test]
    fn iterative_runs_requested_rounds() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(21);
        let it = IterativeConfig { rounds: 2, max_new_pairs: 20, min_score: 0.0 };
        let (_, report) = iterative_fit(tiny_cfg(), it, &ds, 5);
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.rounds[0].pseudo_pairs, 0);
    }

    #[test]
    fn pseudo_pairs_never_reuse_gold_seeds() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(22);
        let it = IterativeConfig { rounds: 1, max_new_pairs: 0, min_score: 0.0 };
        let (model, _) = iterative_fit(tiny_cfg(), it, &ds, 6);
        let seeded_s: std::collections::HashSet<usize> = ds.train_pairs.iter().map(|&(s, _)| s).collect();
        for &(s, _) in &model.pseudo_pairs {
            assert!(!seeded_s.contains(&s), "pseudo pair reuses seeded source {s}");
        }
    }

    #[test]
    fn max_new_pairs_caps_the_cache() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(23);
        let it = IterativeConfig { rounds: 1, max_new_pairs: 5, min_score: -1.0 };
        let (model, report) = iterative_fit(tiny_cfg(), it, &ds, 7);
        assert!(model.pseudo_pairs.len() <= 5);
        assert!(report.rounds[1].pseudo_pairs <= 5);
    }
}
