//! Full training-state checkpointing: crash-safe save, verified load,
//! bit-identical resume.
//!
//! A checkpoint captures **everything** the training trajectory is a
//! function of — model weights, AdamW moments and step counter, the RNG
//! state, the train/validation split and pseudo-pair pool, the
//! early-stopping tracker, and the watchdog rollback count — so that
//! `fit(n)` and `fit(k); save; load; fit(n−k)` produce byte-identical
//! parameters (the contract `docs/RELIABILITY.md` documents and `ci.sh`
//! enforces).
//!
//! The JSON payload is framed and persisted through
//! [`desalign_util::atomic_write`]: a kill at any byte leaves the path
//! holding the previous complete checkpoint or the new one, never a torn
//! mixture, and [`DesalignModel::resume_training`] rejects any corrupt
//! file with a clean `InvalidData` error. `u64` values that can exceed
//! 2⁵³ (seed, optimizer step, rollback count, RNG words) are stored as
//! decimal strings; digests are 16-digit hex.
//!
//! ```
//! use desalign_core::{DesalignConfig, DesalignModel};
//! use desalign_mmkg::{DatasetSpec, SynthConfig};
//!
//! let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(40).generate(1);
//! let mut cfg = DesalignConfig::fast();
//! cfg.hidden_dim = 16;
//! cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
//! cfg.epochs = 4;
//! let path = std::env::temp_dir().join("desalign-ckpt-doc.bin");
//!
//! // Train 2 epochs, checkpoint, and resume in a fresh model.
//! let mut model = DesalignModel::new(cfg.clone(), &ds, 7);
//! let mut state = model.begin_training(&ds);
//! model.train_epochs(&mut state, 2);
//! model.save_checkpoint(&state, &path).unwrap();
//!
//! let mut revived = DesalignModel::new(cfg, &ds, 7);
//! let mut state2 = revived.resume_training(&ds, &path).unwrap();
//! assert_eq!(state2.next_epoch(), 2);
//! revived.train_epochs(&mut state2, usize::MAX);
//! revived.end_training(state2);
//! std::fs::remove_file(&path).ok();
//! ```

use crate::config::DesalignConfig;
use crate::model::DesalignModel;
use crate::train::TrainReport;
use crate::trainer::TrainState;
use desalign_mmkg::AlignmentDataset;
use desalign_nn::checkpoint::{matrix_from_json, matrix_to_json_string, write_f32_json};
use desalign_nn::AdamW;
use desalign_tensor::Rng64;
use desalign_util::{atomic_write, checksum64, read_verified, u64_from_json, Json, ToJson};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Format tag written into (and required of) every checkpoint.
pub const CHECKPOINT_FORMAT: &str = "desalign-train-checkpoint";

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a digest of the configuration's provenance JSON — resuming under
/// a different configuration is refused.
pub fn config_digest(cfg: &DesalignConfig) -> u64 {
    checksum64(cfg.to_json().to_string().as_bytes())
}

/// FNV-1a digest of the dataset's identity: name, entity counts, and the
/// full train/test seed-pair lists. Two datasets that differ only in the
/// alignment split (e.g. two synthetic seeds over the same shape) get
/// different digests, so resuming against the wrong data is refused even
/// when the shapes coincide. Features are not hashed — they are large,
/// and the split already pins the generation.
pub fn dataset_digest(dataset: &AlignmentDataset) -> u64 {
    let mut key = format!(
        "{}|{}|{}|",
        dataset.name, dataset.source.num_entities, dataset.target.num_entities
    );
    for &(s, t) in dataset.train_pairs.iter().chain(&dataset.test_pairs) {
        let _ = write!(key, "{s},{t};");
    }
    checksum64(key.as_bytes())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn jerr(e: desalign_util::JsonError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn write_pairs(out: &mut String, pairs: &[(usize, usize)]) {
    out.push('[');
    for (i, &(s, t)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "[{s},{t}]").expect("string write");
    }
    out.push(']');
}

fn read_pairs(doc: &Json, key: &str) -> io::Result<Vec<(usize, usize)>> {
    let arr = doc.get(key).and_then(Json::as_array).ok_or_else(|| invalid(format!("missing or non-array field '{key}'")))?;
    arr.iter()
        .map(|p| {
            let pair = p.as_array().filter(|a| a.len() == 2).ok_or_else(|| invalid(format!("'{key}' entries must be [s,t] pairs")))?;
            let s = pair[0].as_usize().ok_or_else(|| invalid(format!("non-integer entity id in '{key}'")))?;
            let t = pair[1].as_usize().ok_or_else(|| invalid(format!("non-integer entity id in '{key}'")))?;
            Ok((s, t))
        })
        .collect()
}

fn read_u64_field(doc: &Json, key: &str) -> io::Result<u64> {
    let v = doc.get(key).ok_or_else(|| invalid(format!("missing field '{key}'")))?;
    u64_from_json(v).map_err(jerr)
}

impl DesalignModel {
    /// Writes the full training state to `path` atomically.
    ///
    /// The file holds the checksummed frame of
    /// `desalign_util::atomicio`; concurrent readers and crashed writers
    /// always observe a complete generation. Call this at an epoch
    /// boundary (between [`DesalignModel::train_epochs`] calls).
    pub fn save_checkpoint(&self, state: &TrainState, path: &Path) -> io::Result<()> {
        atomic_write(path, self.checkpoint_payload(state).as_bytes())
    }

    /// The checkpoint JSON payload (exposed for the fault-injection
    /// harness, which tears this byte stream at chosen offsets).
    pub fn checkpoint_payload(&self, state: &TrainState) -> String {
        let mut out = String::with_capacity(4096);
        write!(
            out,
            "{{\"format\":\"{CHECKPOINT_FORMAT}\",\"version\":{CHECKPOINT_VERSION},\"seed\":\"{}\",\"config_digest\":\"{:016x}\",\"dataset_digest\":\"{:016x}\"",
            self.seed,
            config_digest(&self.cfg),
            self.dataset_digest
        )
        .expect("string write");
        write!(out, ",\"epoch\":{},\"stopped\":{},\"rollbacks\":\"{}\"", state.next_epoch, state.stopped, state.rollbacks)
            .expect("string write");
        out.push_str(",\"best_val\":");
        write_f32_json(&mut out, state.best_val);
        write!(out, ",\"patience_left\":{}", state.patience_left).expect("string write");
        let rng = self.rng.state();
        write!(out, ",\"rng\":[\"{}\",\"{}\",\"{}\",\"{}\"]", rng[0], rng[1], rng[2], rng[3]).expect("string write");
        out.push_str(",\"pool\":");
        write_pairs(&mut out, &state.pool);
        out.push_str(",\"val_pairs\":");
        write_pairs(&mut out, &state.val_pairs);
        out.push_str(",\"pseudo_pairs\":");
        write_pairs(&mut out, &self.pseudo_pairs);
        out.push_str(",\"best_snapshot\":");
        match &state.best_snapshot {
            None => out.push_str("null"),
            Some(snap) => {
                out.push('[');
                for (i, m) in snap.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&matrix_to_json_string(m));
                }
                out.push(']');
            }
        }
        out.push_str(",\"optimizer\":");
        out.push_str(&state.opt.state_to_json_string());
        out.push_str(",\"weights\":");
        out.push_str(&self.store.weights_to_json_string());
        out.push('}');
        out
    }

    /// Loads a checkpoint written by [`DesalignModel::save_checkpoint`]
    /// and restores the exact training trajectory: weights, optimizer,
    /// RNG, pool/validation split, pseudo pairs, and the early-stop
    /// tracker. Returns the [`TrainState`] to pass to
    /// [`DesalignModel::train_epochs`].
    ///
    /// The model must have been built with the same configuration,
    /// dataset, and seed — all three are digest-checked. Torn or corrupt
    /// files fail with `InvalidData` (the frame checksum catches them
    /// before parsing starts); the model is untouched on any error.
    pub fn resume_training(&mut self, dataset: &AlignmentDataset, path: &Path) -> io::Result<TrainState> {
        // Failpoint `checkpoint.load`: exercises the resume-under-fault
        // path. No-op without an active schedule.
        desalign_failpoint::fail_io("checkpoint.load")?;
        let bytes = read_verified(path)?;
        let text = String::from_utf8(bytes).map_err(|e| invalid(format!("checkpoint is not UTF-8: {e}")))?;
        let doc = Json::parse(&text).map_err(jerr)?;

        self.check_checkpoint_header(&doc, dataset)?;

        // Parse everything into locals first; mutate the model only after
        // the whole document has validated.
        let next_epoch: usize = doc.field("epoch").map_err(jerr)?;
        let stopped: bool = doc.field("stopped").map_err(jerr)?;
        let rollbacks = read_u64_field(&doc, "rollbacks")?;
        let best_val: f32 = doc.field("best_val").map_err(jerr)?;
        let patience_left: usize = doc.field("patience_left").map_err(jerr)?;
        let rng_words = doc.get("rng").and_then(Json::as_array).ok_or_else(|| invalid("missing or non-array field 'rng'"))?;
        if rng_words.len() != 4 {
            return Err(invalid(format!("'rng' must hold 4 words, found {}", rng_words.len())));
        }
        let mut rng_state = [0u64; 4];
        for (slot, w) in rng_state.iter_mut().zip(rng_words) {
            *slot = u64_from_json(w).map_err(jerr)?;
        }
        if rng_state == [0; 4] {
            return Err(invalid("'rng' is the all-zero state (xoshiro fixed point)"));
        }
        let pool = read_pairs(&doc, "pool")?;
        let val_pairs = read_pairs(&doc, "val_pairs")?;
        let pseudo_pairs = read_pairs(&doc, "pseudo_pairs")?;
        let best_snapshot = match doc.get("best_snapshot") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let mats = v.as_array().ok_or_else(|| invalid("'best_snapshot' must be null or an array"))?;
                Some(mats.iter().map(|m| matrix_from_json(m).map_err(jerr)).collect::<io::Result<Vec<_>>>()?)
            }
        };
        let mut opt = AdamW::new(self.cfg.weight_decay);
        opt.restore_state(
            doc.get("optimizer").ok_or_else(|| invalid("missing field 'optimizer'"))?,
            &self.store,
        )?;

        // Weights last: `load_weights_json` validates the full layout
        // before touching the store.
        let weights = doc.get("weights").ok_or_else(|| invalid("missing field 'weights'"))?;
        self.store.load_weights_json(weights)?;
        self.rng = Rng64::from_state(rng_state);
        self.pseudo_pairs = pseudo_pairs;

        desalign_telemetry::counter("train.resumes").incr();
        Ok(TrainState {
            pool,
            val_pairs,
            opt,
            next_epoch,
            best_val,
            best_snapshot,
            patience_left,
            stopped,
            rollbacks,
            resumed_from: Some(next_epoch),
            report: TrainReport::default(),
            good: None,
        })
    }

    /// Validates the identity header every checkpoint carries: format tag,
    /// schema version, and the seed / configuration / dataset digests that
    /// pin which run wrote it.
    fn check_checkpoint_header(&self, doc: &Json, dataset: &AlignmentDataset) -> io::Result<()> {
        let format: String = doc.field("format").map_err(jerr)?;
        if format != CHECKPOINT_FORMAT {
            return Err(invalid(format!("not a training checkpoint (format '{format}')")));
        }
        let version: u64 = read_u64_field(doc, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(invalid(format!("unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})")));
        }
        let seed = read_u64_field(doc, "seed")?;
        if seed != self.seed {
            return Err(invalid(format!("checkpoint was written by a run seeded {seed}, this model is seeded {}", self.seed)));
        }
        let read_digest = |key: &str| -> io::Result<u64> {
            let s: String = doc.field(key).map_err(jerr)?;
            u64::from_str_radix(&s, 16).map_err(|e| invalid(format!("bad {key} '{s}': {e}")))
        };
        let cfg_digest = read_digest("config_digest")?;
        if cfg_digest != config_digest(&self.cfg) {
            return Err(invalid("checkpoint configuration digest mismatch — was the config changed?"));
        }
        let ds_digest = read_digest("dataset_digest")?;
        if ds_digest != dataset_digest(dataset) {
            return Err(invalid("checkpoint dataset digest mismatch — resuming against a different dataset"));
        }
        Ok(())
    }

    /// Loads only what **inference** needs from a checkpoint — weights and
    /// the mined pseudo-pair pool — skipping the optimizer moments, RNG
    /// words, and early-stop tracker that exist to continue a training
    /// trajectory. The identity header (seed / config digest / dataset
    /// digest) is verified exactly as in
    /// [`DesalignModel::resume_training`], so a server can never silently
    /// serve weights trained under a different run. Restart determinism
    /// follows: two loads of the same file leave byte-identical weights,
    /// so `desalign-serve` answers bit-identically across restarts.
    ///
    /// The model is untouched on any error.
    pub fn load_checkpoint_inference(&mut self, dataset: &AlignmentDataset, path: &Path) -> io::Result<()> {
        // Failpoint `checkpoint.load`: lets the serve-layer reload path
        // rehearse a failed load. No-op without an active schedule.
        desalign_failpoint::fail_io("checkpoint.load")?;
        let bytes = read_verified(path)?;
        let text = String::from_utf8(bytes).map_err(|e| invalid(format!("checkpoint is not UTF-8: {e}")))?;
        let doc = Json::parse(&text).map_err(jerr)?;
        self.check_checkpoint_header(&doc, dataset)?;
        let pseudo_pairs = read_pairs(&doc, "pseudo_pairs")?;
        // Weights validate the full layout before touching the store, so
        // the all-or-nothing contract holds here too.
        let weights = doc.get("weights").ok_or_else(|| invalid("missing field 'weights'"))?;
        self.store.load_weights_json(weights)?;
        self.pseudo_pairs = pseudo_pairs;
        desalign_telemetry::counter("checkpoint.inference_loads").incr();
        Ok(())
    }

    /// Resumes from `path` when a valid checkpoint exists there, or
    /// starts a fresh run when the file is missing. Corrupt checkpoints
    /// still error — silently restarting over a torn file would mask the
    /// fault the format is designed to surface.
    pub fn resume_or_start(&mut self, dataset: &AlignmentDataset, path: &Path) -> io::Result<TrainState> {
        match self.resume_training(dataset, path) {
            Ok(state) => Ok(state),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(self.begin_training(dataset)),
            Err(e) => Err(e),
        }
    }
}
