//! The multi-modal encoder of §IV-A: GAT structure branch, per-modality FC
//! branches, and a stack of CAW fusion blocks.
//!
//! Weights are shared between the two knowledge graphs (standard in entity
//! alignment); only the learnable structure embeddings `x^g` and the
//! adjacency differ per side.

use crate::config::{DesalignConfig, StructureEncoderKind};
use desalign_autodiff::Var;
use desalign_mmkg::{fill_missing_with_noise, AlignmentDataset, ModalFeatures};
use desalign_nn::{CrossModalAttention, GatEncoder, Linear, ParamId, ParamStore, Session};
use desalign_tensor::{uniform_matrix, Matrix, Rng64};
use std::rc::Rc;

/// The four modalities of `M = {g, r, t, v}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modality {
    /// Graph structure (`g`).
    Structure,
    /// Relations (`r`).
    Relation,
    /// Text attributes (`t`).
    Text,
    /// Vision (`v`).
    Visual,
}

impl Modality {
    /// All modalities in the paper's order.
    pub const ALL: [Modality; 4] = [Modality::Structure, Modality::Relation, Modality::Text, Modality::Visual];

    /// Single-letter name used in the paper (`g`, `r`, `t`, `v`).
    pub fn letter(&self) -> char {
        match self {
            Modality::Structure => 'g',
            Modality::Relation => 'r',
            Modality::Text => 't',
            Modality::Visual => 'v',
        }
    }
}

/// Per-side fixed inputs prepared once before training.
pub struct GraphInputs {
    /// Message edges (both orientations + self-loops).
    pub src: Rc<Vec<usize>>,
    /// Message edge destinations.
    pub dst: Rc<Vec<usize>>,
    /// Symmetrically normalized adjacency (GCN branch and SP operator).
    pub adj_norm: Rc<desalign_graph::Csr>,
    /// Raw relation BoW with missing rows noise-filled.
    pub relation: Matrix,
    /// Raw attribute BoW with missing rows noise-filled.
    pub attribute: Matrix,
    /// Raw visual features with missing rows noise-filled.
    pub visual: Matrix,
    /// Modality presence masks (pre-fill), used by Semantic Propagation.
    pub features: ModalFeatures,
    /// Number of entities on this side.
    pub n: usize,
}

impl GraphInputs {
    /// Builds inputs for one side: extracts features, records masks, and
    /// noise-fills missing rows (the paper's §IV-A initialization policy).
    pub fn prepare(kg: &desalign_mmkg::Mmkg, cfg: &DesalignConfig, rng: &mut Rng64) -> Self {
        let features = ModalFeatures::build(kg, &cfg.feature_dims);
        let relation = fill_missing_with_noise(&features.relation, &features.has_relation, rng);
        let attribute = fill_missing_with_noise(&features.attribute, &features.has_attribute, rng);
        let visual = fill_missing_with_noise(&features.visual, &features.has_visual, rng);
        let graph = kg.graph();
        let (src, dst) = graph.message_edges();
        let adj_norm = Rc::new(graph.normalized_adjacency(true));
        Self { src: Rc::new(src), dst: Rc::new(dst), adj_norm, relation, attribute, visual, features, n: kg.num_entities }
    }
}

/// Output of one encoder pass over one graph.
pub struct EncodedGraph {
    /// Active modalities, in order.
    pub modalities: Vec<Modality>,
    /// Branch embeddings `h^m` (layer `k−1` inputs to CAW), each `n × d`.
    pub modal: Vec<Var>,
    /// Per-CAW-layer fused embeddings `ĥ^m`, outermost index = layer.
    pub fused_layers: Vec<Vec<Var>>,
    /// Modal confidences `w̃^m` from the last CAW layer, each `n × 1`.
    pub confidence: Vec<Var>,
    /// Early-fusion joint embedding `h^Ori = ⊕_m w̃^m h^m` (Eq. 14) — the
    /// paper's final entity representation for evaluation.
    pub h_ori: Var,
    /// Late-fusion joint embeddings `X^(1..k)`, one per CAW layer.
    pub h_fus_layers: Vec<Var>,
}

impl EncodedGraph {
    /// The final late-fusion embedding `X^(k)`.
    pub fn h_fus(&self) -> Var {
        *self.h_fus_layers.last().expect("at least one CAW layer")
    }

    /// `X^(k−1)`: the penultimate fused embedding, falling back to `X^(0)`
    /// (= `h^Ori`) when the encoder has a single CAW layer.
    pub fn h_fus_prev(&self) -> Var {
        if self.h_fus_layers.len() >= 2 {
            self.h_fus_layers[self.h_fus_layers.len() - 2]
        } else {
            self.h_ori
        }
    }
}

enum StructureBranch {
    Gat(GatEncoder),
    Gcn { w1: ParamId, w2: ParamId },
}

/// The shared multi-modal encoder.
pub struct MultiModalEncoder {
    modalities: Vec<Modality>,
    confidence_fusion: bool,
    fusion_normalize: bool,
    confidence_blend: f32,
    mask_missing: bool,
    x_g: [ParamId; 2], // learnable structure embeddings per side
    structure: StructureBranch,
    fc_r: Linear,
    fc_t: Linear,
    fc_v: Linear,
    caw: Vec<CrossModalAttention>,
    hidden_dim: usize,
}

impl MultiModalEncoder {
    /// Registers all parameters for the given dataset shape.
    pub fn new(store: &mut ParamStore, rng: &mut Rng64, cfg: &DesalignConfig, dataset: &AlignmentDataset) -> Self {
        let d = cfg.hidden_dim;
        let mut modalities = Vec::new();
        let ab = &cfg.ablation;
        if ab.use_structure {
            modalities.push(Modality::Structure);
        }
        if ab.use_relation {
            modalities.push(Modality::Relation);
        }
        if ab.use_text {
            modalities.push(Modality::Text);
        }
        if ab.use_visual {
            modalities.push(Modality::Visual);
        }
        let bound = (1.0 / (d as f32).sqrt()) * 3.0f32.sqrt();
        let x_g = [
            store.add("xg.source", uniform_matrix(rng, dataset.source.num_entities, d, -bound, bound)),
            store.add("xg.target", uniform_matrix(rng, dataset.target.num_entities, d, -bound, bound)),
        ];
        let structure = match cfg.structure_encoder {
            StructureEncoderKind::Gat => StructureBranch::Gat(GatEncoder::new(store, rng, "gat", d, cfg.gat_heads, cfg.gat_layers)),
            StructureEncoderKind::Gcn => StructureBranch::Gcn {
                w1: store.add("gcn.w1", desalign_tensor::glorot_uniform(rng, d, d)),
                w2: store.add("gcn.w2", desalign_tensor::glorot_uniform(rng, d, d)),
            },
        };
        let fc_r = Linear::new(store, rng, "fc_r", cfg.feature_dims.relation, d, true);
        let fc_t = Linear::new(store, rng, "fc_t", cfg.feature_dims.attribute, d, true);
        let fc_v = Linear::new(store, rng, "fc_v", cfg.feature_dims.visual, d, true);
        let caw = (0..cfg.caw_layers)
            .map(|l| CrossModalAttention::new(store, rng, &format!("caw{l}"), modalities.len(), d, cfg.caw_heads, d * 2))
            .collect();
        Self {
            modalities,
            confidence_fusion: cfg.ablation.use_confidence_fusion,
            fusion_normalize: cfg.fusion_normalize,
            confidence_blend: cfg.confidence_blend,
            mask_missing: cfg.mask_missing_modalities,
            x_g,
            structure,
            fc_r,
            fc_t,
            fc_v,
            caw,
            hidden_dim: d,
        }
    }

    /// Active modalities.
    pub fn modalities(&self) -> &[Modality] {
        &self.modalities
    }

    /// Unified hidden dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The per-modality FC weight ids — exposed for the Proposition 2
    /// singular-value diagnostics.
    pub fn fc_weights(&self) -> Vec<(Modality, ParamId)> {
        vec![
            (Modality::Relation, self.fc_r.weight()),
            (Modality::Text, self.fc_t.weight()),
            (Modality::Visual, self.fc_v.weight()),
        ]
    }

    /// Encodes one side (`side` 0 = source, 1 = target).
    pub fn forward(&self, sess: &mut Session<'_>, inputs: &GraphInputs, side: usize) -> EncodedGraph {
        assert!(side < 2, "MultiModalEncoder::forward: side must be 0 or 1");
        // Branch embeddings h^m (Eq. 7–8).
        let mut modal = Vec::with_capacity(self.modalities.len());
        for &m in &self.modalities {
            let h = match m {
                Modality::Structure => {
                    let xg = sess.param(self.x_g[side]);
                    match &self.structure {
                        StructureBranch::Gat(gat) => gat.forward(sess, xg, &inputs.src, &inputs.dst),
                        StructureBranch::Gcn { w1, w2 } => {
                            let w1 = sess.param(*w1);
                            let w2 = sess.param(*w2);
                            let h = sess.tape.matmul(xg, w1);
                            let h = sess.tape.spmm(Rc::clone(&inputs.adj_norm), h);
                            let h = sess.tape.relu(h);
                            let h = sess.tape.matmul(h, w2);
                            sess.tape.spmm(Rc::clone(&inputs.adj_norm), h)
                        }
                    }
                }
                Modality::Relation => {
                    let x = sess.input(inputs.relation.clone());
                    self.fc_r.forward(sess, x)
                }
                Modality::Text => {
                    let x = sess.input(inputs.attribute.clone());
                    self.fc_t.forward(sess, x)
                }
                Modality::Visual => {
                    let x = sess.input(inputs.visual.clone());
                    self.fc_v.forward(sess, x)
                }
            };
            modal.push(h);
        }

        // Stacked CAW blocks (Eq. 9–12); confidences from the last block.
        let mut fused_layers = Vec::with_capacity(self.caw.len());
        let mut confidence = Vec::new();
        let mut current = modal.clone();
        for (l, block) in self.caw.iter().enumerate() {
            let out = block.forward(sess, &current);
            current = out.fused.clone();
            fused_layers.push(out.fused);
            if l + 1 == self.caw.len() {
                confidence = out.confidence;
            }
        }

        let (h_ori, h_fus_layers) =
            self.fuse_outputs(sess, &modal, &fused_layers, &confidence, inputs.n, &inputs.features, None);

        EncodedGraph { modalities: self.modalities.clone(), modal, fused_layers, confidence, h_ori, h_fus_layers }
    }

    /// Encodes a sampled neighborhood of one side: the same shared weights
    /// as [`forward`](Self::forward), applied to the `sub.nodes` rows only.
    ///
    /// - Structure embeddings are row-gathered **differentiably** from
    ///   `x^g`, so gradients flow back to exactly the sampled rows;
    /// - the GAT/GCN runs on the subgraph's local message edges (both
    ///   orientations + self-loops, mirroring
    ///   [`UndirectedGraph::message_edges`](desalign_graph::UndirectedGraph::message_edges));
    /// - FC branch inputs and presence masks are host-gathered per node.
    ///
    /// Peak tape memory is `O(|sub| × d)` instead of `O(n × d)` — this is
    /// what makes out-of-core training (`docs/DATA_FORMAT.md`) fit in a
    /// bounded footprint.
    pub fn forward_sampled(
        &self,
        sess: &mut Session<'_>,
        inputs: &GraphInputs,
        side: usize,
        sub: &desalign_graph::SampledSubgraph,
    ) -> EncodedGraph {
        assert!(side < 2, "MultiModalEncoder::forward_sampled: side must be 0 or 1");
        let n_sub = sub.num_nodes();
        let idx = Rc::new(sub.nodes.clone());
        // Local message edges, ordered exactly like
        // `UndirectedGraph::message_edges`: both orientations per edge,
        // then self-loops at the tail.
        let mut src = Vec::with_capacity(sub.edges.len() * 2 + n_sub);
        let mut dst = Vec::with_capacity(sub.edges.len() * 2 + n_sub);
        for &(u, v) in &sub.edges {
            src.push(u);
            dst.push(v);
            src.push(v);
            dst.push(u);
        }
        for i in 0..n_sub {
            src.push(i);
            dst.push(i);
        }
        let (src, dst) = (Rc::new(src), Rc::new(dst));
        let gather_host = |m: &Matrix| -> Matrix {
            let cols = m.cols();
            let mut data = Vec::with_capacity(n_sub * cols);
            for &g in idx.iter() {
                data.extend_from_slice(m.row(g));
            }
            Matrix::from_vec(n_sub, cols, data)
        };

        let mut modal = Vec::with_capacity(self.modalities.len());
        for &m in &self.modalities {
            let h = match m {
                Modality::Structure => {
                    let xg = sess.param(self.x_g[side]);
                    let xg = sess.tape.gather_rows(xg, Rc::clone(&idx));
                    match &self.structure {
                        StructureBranch::Gat(gat) => gat.forward(sess, xg, &src, &dst),
                        StructureBranch::Gcn { w1, w2 } => {
                            let adj = Rc::new(
                                desalign_graph::UndirectedGraph::new(n_sub, sub.edges.iter().copied())
                                    .normalized_adjacency(true),
                            );
                            let w1 = sess.param(*w1);
                            let w2 = sess.param(*w2);
                            let h = sess.tape.matmul(xg, w1);
                            let h = sess.tape.spmm(Rc::clone(&adj), h);
                            let h = sess.tape.relu(h);
                            let h = sess.tape.matmul(h, w2);
                            sess.tape.spmm(adj, h)
                        }
                    }
                }
                Modality::Relation => {
                    let x = sess.input(gather_host(&inputs.relation));
                    self.fc_r.forward(sess, x)
                }
                Modality::Text => {
                    let x = sess.input(gather_host(&inputs.attribute));
                    self.fc_t.forward(sess, x)
                }
                Modality::Visual => {
                    let x = sess.input(gather_host(&inputs.visual));
                    self.fc_v.forward(sess, x)
                }
            };
            modal.push(h);
        }

        // Stacked CAW blocks — identical to the full-graph pass.
        let mut fused_layers = Vec::with_capacity(self.caw.len());
        let mut confidence = Vec::new();
        let mut current = modal.clone();
        for (l, block) in self.caw.iter().enumerate() {
            let out = block.forward(sess, &current);
            current = out.fused.clone();
            fused_layers.push(out.fused);
            if l + 1 == self.caw.len() {
                confidence = out.confidence;
            }
        }

        let (h_ori, h_fus_layers) =
            self.fuse_outputs(sess, &modal, &fused_layers, &confidence, n_sub, &inputs.features, Some(&sub.nodes));

        EncodedGraph { modalities: self.modalities.clone(), modal, fused_layers, confidence, h_ori, h_fus_layers }
    }

    /// The fusion tail shared by the full-graph and sampled passes: builds
    /// the joint embeddings `h^Ori` and `X^(1..k)` from the branch and CAW
    /// outputs. `rows` selects which global entities the `n` local rows
    /// correspond to (`None` = identity, the full graph).
    ///
    /// Joint embeddings (Eq. 14): ℓ2-normalize each modality block (so no
    /// branch dominates the concatenation by norm alone — the standard
    /// practice in the EVA/MCLEA/MEAformer implementations), weight by
    /// the confidence, and concatenate.
    ///
    /// With `mask_missing_modalities` on, absent modalities are masked
    /// out of the fusion and the remaining weights renormalized per
    /// entity, so noise-filled rows never reach the joint embedding:
    ///   `w^m ← (b^m · 1[m present]) / Σ_{m'} b^{m'} · 1[m' present]`
    /// where `b^m` is the blended confidence weight (or 1/|M| uniform).
    /// The uniform path is rescaled by |M| so a fully-present entity
    /// keeps weight 1 per block, matching the unmasked concatenation.
    #[allow(clippy::too_many_arguments)]
    fn fuse_outputs(
        &self,
        sess: &mut Session<'_>,
        modal: &[Var],
        fused_layers: &[Vec<Var>],
        confidence: &[Var],
        n: usize,
        features: &ModalFeatures,
        rows: Option<&[usize]>,
    ) -> (Var, Vec<Var>) {
        let normalize = self.fusion_normalize;
        let alpha = self.confidence_blend;
        let m_count = self.modalities.len() as f32;
        let masks: Option<Vec<Var>> = if self.mask_missing {
            Some(
                self.modalities
                    .iter()
                    .map(|m| {
                        let to_bits = |has: &[bool]| -> Vec<f32> {
                            match rows {
                                None => has.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
                                Some(r) => r.iter().map(|&g| if has[g] { 1.0 } else { 0.0 }).collect(),
                            }
                        };
                        let bits: Vec<f32> = match m {
                            // Structure embeddings are learnable — never absent.
                            Modality::Structure => vec![1.0; n],
                            Modality::Relation => to_bits(&features.has_relation),
                            Modality::Text => to_bits(&features.has_attribute),
                            Modality::Visual => to_bits(&features.has_visual),
                        };
                        sess.input(Matrix::column(bits))
                    })
                    .collect(),
            )
        } else {
            None
        };
        let fuse = |sess: &mut Session<'_>, parts: &[Var], confidence: &[Var], weighted: bool| {
            let use_w = weighted && alpha > 0.0;
            if let Some(masks) = &masks {
                // Masked path: per-modality base weights ⊙ presence, then
                // per-entity renormalization.
                let masked_w: Vec<Var> = masks
                    .iter()
                    .zip(confidence)
                    .map(|(&mask, &w)| {
                        if use_w {
                            // w_eff = α·w̃ + (1−α)/|M| (see DesalignConfig).
                            let scaled = sess.tape.scale(w, alpha);
                            let w_eff = sess.tape.add_const(scaled, (1.0 - alpha) / m_count);
                            sess.tape.mul(w_eff, mask)
                        } else {
                            sess.tape.scale(mask, 1.0 / m_count)
                        }
                    })
                    .collect();
                let mut denom = masked_w[0];
                for &v in &masked_w[1..] {
                    denom = sess.tape.add(denom, v);
                }
                // ε keeps an all-modalities-absent entity at weight 0
                // instead of 0/0 = NaN.
                let denom = sess.tape.add_const(denom, 1e-12);
                let blocks: Vec<Var> = parts
                    .iter()
                    .zip(&masked_w)
                    .map(|(&h, &mw)| {
                        let n = if normalize { sess.tape.l2_normalize_rows(h, 1e-6) } else { h };
                        let mut wf = sess.tape.div(mw, denom);
                        if !use_w {
                            // Restore the unmasked uniform scale (weight 1
                            // per block when everything is present).
                            wf = sess.tape.scale(wf, m_count);
                        }
                        sess.tape.mul_broadcast_col(n, wf)
                    })
                    .collect();
                return sess.tape.concat_cols(&blocks);
            }
            // Unmasked path — kept byte-for-byte identical to the
            // historical fusion so existing fingerprints are preserved.
            let blocks: Vec<Var> = parts
                .iter()
                .zip(confidence)
                .map(|(&h, &w)| {
                    let n = if normalize { sess.tape.l2_normalize_rows(h, 1e-6) } else { h };
                    if use_w {
                        // w_eff = α·w̃ + (1−α)/|M| (see DesalignConfig).
                        let scaled = sess.tape.scale(w, alpha);
                        let w_eff = sess.tape.add_const(scaled, (1.0 - alpha) / m_count);
                        sess.tape.mul_broadcast_col(n, w_eff)
                    } else {
                        n
                    }
                })
                .collect();
            sess.tape.concat_cols(&blocks)
        };
        let h_ori = fuse(sess, modal, confidence, self.confidence_fusion);
        let h_fus_layers: Vec<Var> = fused_layers
            .iter()
            .map(|layer| fuse(sess, layer, confidence, self.confidence_fusion))
            .collect();

        (h_ori, h_fus_layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};
    use desalign_tensor::rng_from_seed;

    fn tiny_setup() -> (AlignmentDataset, DesalignConfig) {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(5);
        (ds, cfg)
    }

    #[test]
    fn encoder_produces_consistent_shapes() {
        let (ds, cfg) = tiny_setup();
        let mut rng = rng_from_seed(1);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let inputs = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let out = enc.forward(&mut sess, &inputs, 0);
        let n = ds.source.num_entities;
        let d = cfg.hidden_dim;
        assert_eq!(out.modal.len(), 4);
        for &h in &out.modal {
            assert_eq!(sess.tape.value(h).shape(), (n, d));
        }
        assert_eq!(sess.tape.value(out.h_ori).shape(), (n, 4 * d));
        assert_eq!(out.h_fus_layers.len(), cfg.caw_layers);
        assert_eq!(sess.tape.value(out.h_fus()).shape(), (n, 4 * d));
        for &c in &out.confidence {
            assert_eq!(sess.tape.value(c).shape(), (n, 1));
        }
    }

    #[test]
    fn ablated_modalities_are_dropped() {
        let (ds, mut cfg) = tiny_setup();
        cfg.ablation.use_visual = false;
        cfg.ablation.use_text = false;
        let mut rng = rng_from_seed(2);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        assert_eq!(enc.modalities(), &[Modality::Structure, Modality::Relation]);
        let inputs = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let out = enc.forward(&mut sess, &inputs, 0);
        assert_eq!(sess.tape.value(out.h_ori).shape(), (ds.source.num_entities, 2 * cfg.hidden_dim));
    }

    #[test]
    fn h_fus_prev_falls_back_to_ori_with_single_layer() {
        let (ds, mut cfg) = tiny_setup();
        cfg.caw_layers = 1;
        let mut rng = rng_from_seed(3);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let inputs = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let out = enc.forward(&mut sess, &inputs, 0);
        assert_eq!(out.h_fus_prev(), out.h_ori);
    }

    #[test]
    fn masked_fusion_zeroes_absent_modality_blocks() {
        let (ds, mut cfg) = tiny_setup();
        cfg.mask_missing_modalities = true;
        cfg.ablation.use_confidence_fusion = false; // uniform weights: exact zeros
        let mut rng = rng_from_seed(7);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let inputs = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let out = enc.forward(&mut sess, &inputs, 0);
        let h = sess.tape.value(out.h_ori);
        let d = cfg.hidden_dim;
        let vis_block = 3 * d..4 * d; // modality order: g, r, t, v
        let missing = (0..inputs.n).find(|&i| !inputs.features.has_visual[i]).expect("synth data has entities without images");
        let present = (0..inputs.n)
            .find(|&i| inputs.features.has_visual[i] && inputs.features.has_attribute[i] && inputs.features.has_relation[i])
            .expect("some entity has every modality");
        assert!(
            h.row(missing)[vis_block.clone()].iter().all(|&v| v == 0.0),
            "noise-filled visual row must be masked out of the joint embedding"
        );
        assert!(h.row(missing).iter().any(|&v| v != 0.0), "present modalities still carry the entity");
        assert!(h.as_slice().iter().all(|v| v.is_finite()), "masked fusion must stay finite");

        // A fully-present entity matches the unmasked fusion (up to the ε
        // in the renormalization denominator).
        let mut cfg2 = cfg.clone();
        cfg2.mask_missing_modalities = false;
        let mut rng2 = rng_from_seed(7);
        let mut store2 = ParamStore::new();
        let enc2 = MultiModalEncoder::new(&mut store2, &mut rng2, &cfg2, &ds);
        let inputs2 = GraphInputs::prepare(&ds.source, &cfg2, &mut rng2);
        let mut sess2 = Session::new(&store2);
        let out2 = enc2.forward(&mut sess2, &inputs2, 0);
        let h2 = sess2.tape.value(out2.h_ori);
        for (a, b) in h.row(present).iter().zip(h2.row(present)) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "fully-present rows must agree: {a} vs {b}");
        }
    }

    #[test]
    fn masked_fusion_survives_total_modality_drop() {
        // Every image and every attribute removed: masking must keep the
        // joint embedding finite (structure + relation carry everything).
        let (mut ds, mut cfg) = tiny_setup();
        for img in ds.source.images.iter_mut() {
            *img = None;
        }
        ds.source.attr_triples.clear();
        cfg.mask_missing_modalities = true;
        let mut rng = rng_from_seed(11);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let inputs = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let out = enc.forward(&mut sess, &inputs, 0);
        let h = sess.tape.value(out.h_ori);
        assert!(h.as_slice().iter().all(|v| v.is_finite()), "total modality drop must not produce NaN");
        assert!(h.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn sides_share_weights_but_not_structure_embeddings() {
        let (ds, cfg) = tiny_setup();
        let mut rng = rng_from_seed(4);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let src_in = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let tgt_in = GraphInputs::prepare(&ds.target, &cfg, &mut rng);
        let mut sess = Session::new(&store);
        let a = enc.forward(&mut sess, &src_in, 0);
        let b = enc.forward(&mut sess, &tgt_in, 1);
        assert_eq!(sess.tape.value(a.h_ori).rows(), ds.source.num_entities);
        assert_eq!(sess.tape.value(b.h_ori).rows(), ds.target.num_entities);
        // Both sides' losses reach the same shared FC weights.
        let ca = sess.tape.concat_cols(&[a.h_ori]);
        let cb = sess.tape.concat_cols(&[b.h_ori]);
        let sa = sess.tape.square(ca);
        let sb = sess.tape.square(cb);
        let la = sess.tape.sum_all(sa);
        let lb = sess.tape.sum_all(sb);
        let loss = sess.tape.add(la, lb);
        let grads = sess.backward(loss);
        assert!(grads.get(enc.fc_r.weight()).is_some());
        assert!(grads.get(enc.x_g[0]).is_some());
        assert!(grads.get(enc.x_g[1]).is_some());
    }
}
