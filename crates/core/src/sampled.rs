//! Out-of-core neighborhood-sampled training (the streaming data plane's
//! compute side — see `docs/DATA_FORMAT.md` for the storage side).
//!
//! The full-graph trainer ([`crate::trainer`]) encodes both entire
//! knowledge graphs every epoch, so its peak tape memory scales with the
//! larger graph. This module trains instead over contiguous
//! **source-entity blocks** — the same blocking the shard format uses —
//! encoding only each block's sampled neighborhood per optimizer step:
//!
//! 1. source core = the block's entity range; target core = the targets
//!    of the block's seed pairs;
//! 2. each core is extended with a bounded halo of sampled cross-block
//!    neighbors ([`desalign_graph::sample_neighborhood`]), so the GAT
//!    sees real message-passing context at the block boundary;
//! 3. [`MultiModalEncoder::forward_sampled`](crate::MultiModalEncoder::forward_sampled)
//!    encodes the subgraphs with the same shared weights, and the MMSL
//!    loss — including the Dirichlet-energy constraint, evaluated on the
//!    subgraph Laplacians — is applied with block-local indices.
//!
//! This is a **first-cut** loop: no watchdog, no early stopping, no
//! validation split; every seed pair in a block forms that block's batch.
//! It is gated behind [`SampledTrainingSettings::enabled`], which
//! defaults to off — the full-graph trajectory (and every fingerprint
//! gate built on it) is untouched unless a caller opts in.
//!
//! [`SampledTrainingSettings::enabled`]: crate::config::SampledTrainingSettings

use crate::loss::{mmsl_loss, LossBreakdown};
use crate::model::DesalignModel;
use crate::train::TrainReport;
use desalign_graph::{sample_neighborhood, Csr, SampledSubgraph, UndirectedGraph};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, Session};
use std::rc::Rc;
use std::time::Instant;

/// One precomputed training block: the two sampled subgraphs, their
/// Laplacians (for the energy constraint), and the block's seed pairs in
/// local subgraph indices.
struct Block {
    sub_s: SampledSubgraph,
    sub_t: SampledSubgraph,
    lap_s: Rc<Csr>,
    lap_t: Rc<Csr>,
    /// `(local_source, local_target)` — indices into the sampled
    /// encodings, always within the core prefix of each subgraph.
    batch: Vec<(usize, usize)>,
}

fn local_laplacian(sub: &SampledSubgraph) -> Csr {
    UndirectedGraph::new(sub.num_nodes(), sub.edges.iter().copied()).laplacian()
}

impl DesalignModel {
    /// Trains with the MMSL objective over sampled per-block subgraphs.
    ///
    /// Called by [`DesalignModel::fit`] when
    /// `cfg.sampled.enabled` is set; callable directly for tests. The
    /// trajectory is a pure function of `(dataset, config, seed)` — block
    /// subgraphs are sampled from the model seed, not the model RNG, so
    /// this path never perturbs the full-graph RNG stream.
    pub fn fit_sampled(&mut self, dataset: &AlignmentDataset) -> TrainReport {
        let _span = desalign_telemetry::span("fit_sampled");
        let t0 = Instant::now();
        let s = self.cfg.sampled;
        let g_s = dataset.source.graph();
        let g_t = dataset.target.graph();
        let n_s = dataset.source.num_entities;
        let block_size = s.block_entities.max(1);
        let num_blocks = n_s.div_ceil(block_size);

        // Training pool: gold seeds + any pseudo pairs mined so far.
        let mut pool: Vec<(usize, usize)> = dataset.train_pairs.clone();
        pool.extend(self.pseudo_pairs.iter().copied());

        let mut blocks = Vec::new();
        for k in 0..num_blocks {
            let (lo, hi) = ((k * block_size).min(n_s), ((k + 1) * block_size).min(n_s));
            let batch_global: Vec<(usize, usize)> =
                pool.iter().copied().filter(|&(sg, _)| sg >= lo && sg < hi).collect();
            if batch_global.is_empty() {
                continue; // a block with no seeds contributes no loss
            }
            let src_core: Vec<usize> = (lo..hi).collect();
            let mut tgt_core: Vec<usize> = batch_global.iter().map(|&(_, tg)| tg).collect();
            tgt_core.sort_unstable();
            tgt_core.dedup();
            // Per-block, per-side seeds so every block draws an
            // independent — but reproducible — halo.
            let sub_s = sample_neighborhood(&g_s, &src_core, s.halo_per_node, self.seed ^ ((k as u64) << 1));
            let sub_t = sample_neighborhood(&g_t, &tgt_core, s.halo_per_node, self.seed ^ ((k as u64) << 1) ^ 1);
            let lap_s = Rc::new(local_laplacian(&sub_s));
            let lap_t = Rc::new(local_laplacian(&sub_t));
            // Source cores are the ascending range, so local = global − lo;
            // target cores are sorted, so local = rank in the core.
            let batch: Vec<(usize, usize)> = batch_global
                .iter()
                .map(|&(sg, tg)| (sg - lo, tgt_core.binary_search(&tg).expect("pair target is in the core")))
                .collect();
            blocks.push(Block { sub_s, sub_t, lap_s, lap_t, batch });
        }
        if desalign_telemetry::enabled() {
            desalign_telemetry::counter("sampled.blocks").add(blocks.len() as u64);
        }

        let mut report = TrainReport::default();
        if blocks.is_empty() {
            return report;
        }
        let schedule = CosineWarmup::new(self.cfg.lr, self.cfg.epochs, self.cfg.warmup_frac);
        let mut opt = AdamW::new(self.cfg.weight_decay);
        for epoch in 0..self.cfg.epochs {
            let _epoch_span = desalign_telemetry::span("epoch");
            let mut agg = LossBreakdown::default();
            for block in &blocks {
                let mut sess = Session::with_workspace(&self.store, Rc::clone(&self.ws));
                let enc_s = self.encoder.forward_sampled(&mut sess, &self.inputs[0], 0, &block.sub_s);
                let enc_t = self.encoder.forward_sampled(&mut sess, &self.inputs[1], 1, &block.sub_t);
                let (loss, bd) =
                    mmsl_loss(&mut sess, &self.cfg, &enc_s, &enc_t, &block.batch, (&block.lap_s, &block.lap_t));
                let mut grads = sess.backward(loss);
                opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
                agg.total += bd.total;
                agg.task0 += bd.task0;
                agg.taskk += bd.taskk;
                agg.modal_k1 += bd.modal_k1;
                agg.modal_k += bd.modal_k;
                agg.energy_penalty += bd.energy_penalty;
            }
            // Report per-block means so magnitudes stay comparable to the
            // full-graph trainer's per-epoch breakdowns.
            let nb = blocks.len() as f32;
            agg.total /= nb;
            agg.task0 /= nb;
            agg.taskk /= nb;
            agg.modal_k1 /= nb;
            agg.modal_k /= nb;
            agg.energy_penalty /= nb;
            report.loss_history.push(agg);
            report.epochs_run = epoch + 1;
        }
        report.final_loss = report.loss_history.last().copied().unwrap_or_default();
        report.seconds = t0.elapsed().as_secs_f64();
        report
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DesalignConfig;
    use crate::model::DesalignModel;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    fn sampled_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 6;
        cfg.sampled.enabled = true;
        cfg.sampled.block_entities = 40;
        cfg.sampled.halo_per_node = 4;
        cfg
    }

    #[test]
    fn sampled_training_produces_finite_decreasing_loss() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(100).generate(1);
        let mut model = DesalignModel::new(sampled_cfg(), &ds, 7);
        let report = model.fit(&ds); // dispatches to fit_sampled
        assert_eq!(report.epochs_run, 6);
        assert!(report.loss_history.iter().all(|b| b.total.is_finite()), "sampled losses must stay finite");
        assert!(
            report.final_loss.total < report.loss_history[0].total,
            "loss should decrease: {:?}",
            report.loss_history.iter().map(|b| b.total).collect::<Vec<_>>()
        );
        // The trained model still evaluates through the full-graph path.
        let metrics = model.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert!(metrics.mrr.is_finite());
    }

    #[test]
    fn sampled_training_is_deterministic() {
        let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(80).generate(3);
        let run = || {
            let mut model = DesalignModel::new(sampled_cfg(), &ds, 11);
            let report = model.fit_sampled(&ds);
            let fp: Vec<u32> = model
                .params()
                .ids()
                .flat_map(|id| model.params().value(id).as_slice().iter().map(|x| x.to_bits()))
                .collect();
            (report.final_loss.total.to_bits(), fp)
        };
        assert_eq!(run(), run(), "same seed must give a bit-identical sampled trajectory");
    }

    #[test]
    fn sampled_training_beats_untrained() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(100).generate(2);
        let mut cfg = sampled_cfg();
        cfg.epochs = 25;
        let mut trained = DesalignModel::new(cfg.clone(), &ds, 3);
        let untrained = DesalignModel::new(cfg, &ds, 3);
        trained.fit(&ds);
        let m_trained = trained.evaluate(&ds);
        let m_untrained = untrained.evaluate(&ds);
        assert!(
            m_trained.mrr > m_untrained.mrr,
            "sampled training should help: {} vs {}",
            m_trained.mrr,
            m_untrained.mrr
        );
    }

    #[test]
    fn disabled_switch_keeps_full_graph_path_byte_stable() {
        // `fit` with sampled.enabled = false must be the historical
        // trajectory — construct two models with configs differing only
        // in the (inert) sampled knobs and check identical weights.
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(4);
        let mut cfg_a = sampled_cfg();
        cfg_a.sampled.enabled = false;
        let mut cfg_b = cfg_a.clone();
        cfg_b.sampled.block_entities = 7; // inert while disabled
        cfg_b.sampled.halo_per_node = 1;
        let fp = |cfg: DesalignConfig| {
            let mut m = DesalignModel::new(cfg, &ds, 9);
            m.fit(&ds);
            m.params()
                .ids()
                .flat_map(|id| m.params().value(id).as_slice().iter().map(|x| x.to_bits()))
                .collect::<Vec<u32>>()
        };
        assert_eq!(fp(cfg_a), fp(cfg_b));
    }
}
