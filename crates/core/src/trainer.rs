//! The training loop of Algorithm 1 (lines 3–10), split for crash-safe
//! checkpoint/resume, plus the divergence watchdog and fault injection.
//!
//! [`DesalignModel::fit`] is a thin wrapper over three phases:
//!
//! 1. [`DesalignModel::begin_training`] — splits the seed pairs, builds
//!    the training pool (gold + pseudo pairs) and a fresh optimizer, and
//!    returns the [`TrainState`] that owns every piece of loop state;
//! 2. [`DesalignModel::train_epochs`] — runs up to `n` epochs, advancing
//!    `TrainState` in place;
//! 3. [`DesalignModel::end_training`] — restores the best early-stop
//!    snapshot and finalizes the [`TrainReport`].
//!
//! The split is **exactly** trajectory-preserving: `fit()` consumes the
//! model RNG in the same order the monolithic loop did, and a
//! [`TrainState`] persisted at any epoch boundary via
//! [`DesalignModel::save_checkpoint`](crate::checkpoint) and resumed
//! later continues the *bit-identical* trajectory — the contract
//! `docs/RELIABILITY.md` documents and `ci.sh` enforces.
//!
//! # The watchdog
//!
//! When [`WatchdogConfig::enabled`](crate::config::WatchdogConfig), every
//! epoch is vetted after the backward pass and *before* the optimizer
//! step: a non-finite gradient norm, a non-finite loss, a non-finite
//! sampled Dirichlet energy, or a loss spike beyond `spike_factor ×` the
//! last good loss rejects the update, rolls model + state back to the
//! last good in-memory snapshot, and perturbs the sampling stream
//! deterministically so the same pathological batch is not redrawn. Each
//! trip increments the `train.rollbacks` counter and the cumulative
//! `rollbacks` field of subsequent epoch records; after
//! `max_rollbacks` trips the run stops on the last good state.

use crate::energy::EnergyTrace;
use crate::loss::mmsl_loss;
use crate::model::DesalignModel;
use crate::train::{sample_batch, train_val_split, TrainReport};
use desalign_graph::dirichlet_energy;
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, Session};
use desalign_tensor::{rng_from_seed, Matrix, Rng64, SliceRandom};
use std::rc::Rc;
use std::time::Instant;

/// Deterministic fault-injection plan for resilience tests (armed with
/// [`DesalignModel::set_chaos`]).
///
/// Faults are **one-shot**: an epoch listed in [`nan_grad_epochs`] fires
/// once and is removed, so a watchdog rollback that replays the epoch
/// does not re-poison it (which would loop until `max_rollbacks`).
///
/// [`nan_grad_epochs`]: ChaosPlan::nan_grad_epochs
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Epochs whose gradients are overwritten with `NaN` after the
    /// backward pass — simulating numerical divergence at an exact,
    /// reproducible point.
    pub nan_grad_epochs: Vec<usize>,
}

/// Rollback snapshot captured at an epoch boundary (in memory only).
pub(crate) struct GoodState {
    next_epoch: usize,
    params: Vec<Matrix>,
    opt: AdamW,
    rng: [u64; 4],
    best_val: f32,
    best_snapshot: Option<Vec<Matrix>>,
    patience_left: usize,
    loss_len: usize,
    energy_len: usize,
    traces_len: usize,
    last_loss: f32,
}

/// All mutable state of one training run, between epochs.
///
/// Produced by [`DesalignModel::begin_training`] (or a checkpoint
/// resume), advanced by [`DesalignModel::train_epochs`], consumed by
/// [`DesalignModel::end_training`]. Everything needed to continue the
/// exact trajectory lives either here or on the model (weights, RNG),
/// which is why a checkpoint of the pair is sufficient for bit-identical
/// resume.
pub struct TrainState {
    /// Training pool: gold seed pairs (post split) + pseudo pairs.
    pub(crate) pool: Vec<(usize, usize)>,
    /// Held-out validation pairs for early stopping.
    pub(crate) val_pairs: Vec<(usize, usize)>,
    pub(crate) opt: AdamW,
    pub(crate) next_epoch: usize,
    pub(crate) best_val: f32,
    pub(crate) best_snapshot: Option<Vec<Matrix>>,
    pub(crate) patience_left: usize,
    pub(crate) stopped: bool,
    pub(crate) rollbacks: u64,
    pub(crate) resumed_from: Option<usize>,
    pub(crate) report: TrainReport,
    pub(crate) good: Option<GoodState>,
}

impl TrainState {
    /// The next epoch index this state will run (equals the number of
    /// completed epochs).
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// Watchdog rollbacks so far in this run.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// True once the run has finished (early stop, watchdog give-up, or
    /// all epochs done there is nothing left to run).
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// The accumulating report (read access for diagnostics).
    pub fn report(&self) -> &TrainReport {
        &self.report
    }
}

impl DesalignModel {
    /// Trains with the MMSL objective (Algorithm 1 lines 3–10). Calling
    /// `fit` again continues training (used by the iterative strategy).
    ///
    /// Equivalent to `begin_training` → `train_epochs(all)` →
    /// `end_training`; see the [module docs](self) for the split. With
    /// `cfg.sampled.enabled`, dispatches to the out-of-core
    /// [`DesalignModel::fit_sampled`] loop instead.
    pub fn fit(&mut self, dataset: &AlignmentDataset) -> TrainReport {
        if self.cfg.sampled.enabled {
            return self.fit_sampled(dataset);
        }
        let mut state = self.begin_training(dataset);
        self.train_epochs(&mut state, usize::MAX);
        self.end_training(state)
    }

    /// Phase 1: split seeds, build the pool and optimizer, return the
    /// loop state. Consumes the model RNG exactly like the start of the
    /// original monolithic `fit`.
    pub fn begin_training(&mut self, dataset: &AlignmentDataset) -> TrainState {
        // Register the reliability counters up front so metric reports
        // list them even for runs that never resume or roll back.
        desalign_telemetry::counter("train.resumes");
        desalign_telemetry::counter("train.rollbacks");
        let val_frac = if self.cfg.early_stop_patience > 0 { 0.1 } else { 0.0 };
        let (train_pairs, val_pairs) = train_val_split(&dataset.train_pairs, val_frac, &mut self.rng);
        let mut pool = train_pairs;
        pool.extend(self.pseudo_pairs.iter().copied());
        TrainState {
            pool,
            val_pairs,
            opt: AdamW::new(self.cfg.weight_decay),
            next_epoch: 0,
            best_val: 0.0,
            best_snapshot: None,
            patience_left: self.cfg.early_stop_patience,
            stopped: false,
            rollbacks: 0,
            resumed_from: None,
            report: TrainReport::default(),
            good: None,
        }
    }

    /// Phase 2: runs up to `max_epochs` further epochs (bounded by the
    /// configured total), returning how many were completed. Stops early
    /// on patience exhaustion or watchdog give-up.
    pub fn train_epochs(&mut self, state: &mut TrainState, max_epochs: usize) -> usize {
        let _fit_span = desalign_telemetry::span("fit");
        let t0 = Instant::now();
        let schedule = CosineWarmup::new(self.cfg.lr, self.cfg.epochs, self.cfg.warmup_frac);
        let wd = self.cfg.watchdog;
        if state.pool.is_empty() {
            state.stopped = true;
        }
        let mut ran = 0usize;
        while ran < max_epochs && state.next_epoch < self.cfg.epochs && !state.stopped {
            let epoch = state.next_epoch;
            if wd.enabled && (state.good.is_none() || epoch % wd.snapshot_every == 0) {
                self.capture_good(state);
            }
            let _epoch_span = desalign_telemetry::span("epoch");
            let batch = {
                let _span = desalign_telemetry::span("sample");
                sample_batch(&state.pool, self.cfg.batch_size, &mut self.rng)
            };
            let mut sess = Session::with_workspace(&self.store, Rc::clone(&self.ws));
            let (enc_s, enc_t, loss, breakdown) = {
                let _span = desalign_telemetry::span("forward");
                let enc_s = self.encoder.forward(&mut sess, &self.inputs[0], 0);
                let enc_t = self.encoder.forward(&mut sess, &self.inputs[1], 1);
                let (loss, breakdown) =
                    mmsl_loss(&mut sess, &self.cfg, &enc_s, &enc_t, &batch, (&self.laplacians[0], &self.laplacians[1]));
                (enc_s, enc_t, loss, breakdown)
            };

            // Energy trace sampling (Section III instrumentation).
            let mut epoch_energy: Option<f64> = None;
            if self.cfg.eval_every > 0 && epoch % self.cfg.eval_every == 0 {
                let _span = desalign_telemetry::span("energy");
                let trace = EnergyTrace {
                    epoch,
                    source: [
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_ori)),
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_fus_prev())),
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_fus())),
                    ],
                    target: [
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_ori)),
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_fus_prev())),
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_fus())),
                    ],
                };
                // Fused (post-SA) energies of both graphs — the quantity
                // Figure 3 tracks.
                epoch_energy = Some((trace.source[2] + trace.target[2]) as f64);
                self.energy_traces.push(trace);
                state.report.energy_history.push(trace);
            }

            let mut grads = {
                let _span = desalign_telemetry::span("backward");
                sess.backward(loss)
            };
            // Injected fault: poison the gradients exactly once per
            // scheduled epoch.
            if let Some(chaos) = self.chaos.as_mut() {
                if let Some(pos) = chaos.nan_grad_epochs.iter().position(|&e| e == epoch) {
                    chaos.nan_grad_epochs.remove(pos);
                    grads.scale_all(f32::NAN);
                }
            }
            // Read-only diagnostic; skipped entirely when neither
            // telemetry nor the watchdog needs it, so that path does no
            // extra float work.
            let grad_norm = if desalign_telemetry::enabled() || wd.enabled {
                Some(grads.global_norm())
            } else {
                None
            };

            // Watchdog verdict: after backward, before the optimizer step
            // — the weights are still clean when an update is rejected.
            if wd.enabled {
                let last_good = state.good.as_ref().map_or(f32::INFINITY, |g| g.last_loss);
                let spike = breakdown.total.is_finite()
                    && last_good.is_finite()
                    && breakdown.total > wd.spike_factor * last_good.max(1e-6);
                let tripped = !breakdown.total.is_finite()
                    || grad_norm.is_some_and(|g| !g.is_finite())
                    || epoch_energy.is_some_and(|e| !e.is_finite())
                    || spike;
                if tripped {
                    self.rollback(state);
                    if state.rollbacks > wd.max_rollbacks as u64 {
                        state.stopped = true;
                    }
                    continue;
                }
            }

            {
                let _span = desalign_telemetry::span("optimizer");
                state.opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
            }
            state.report.loss_history.push(breakdown);
            state.report.epochs_run = epoch + 1;

            // Early stopping on the held-out seed split.
            let mut epoch_eval = None;
            if !state.val_pairs.is_empty() && self.cfg.eval_every > 0 && (epoch + 1) % self.cfg.eval_every == 0 {
                let _span = desalign_telemetry::span("eval");
                let metrics = self.evaluate_pairs(&state.val_pairs);
                epoch_eval = Some(desalign_telemetry::EvalSnapshot {
                    hits_at_1: metrics.hits_at_1,
                    hits_at_10: metrics.hits_at_10,
                    mrr: metrics.mrr,
                });
                if metrics.hits_at_1 > state.best_val {
                    state.best_val = metrics.hits_at_1;
                    state.best_snapshot = Some(self.store.snapshot());
                    state.patience_left = self.cfg.early_stop_patience;
                } else if self.cfg.early_stop_patience > 0 {
                    state.patience_left -= 1;
                    if state.patience_left == 0 {
                        state.stopped = true;
                    }
                }
            }

            if desalign_telemetry::enabled() {
                let record = desalign_telemetry::EpochRecord {
                    epoch,
                    loss_total: breakdown.total,
                    loss_task0: breakdown.task0,
                    loss_taskk: breakdown.taskk,
                    loss_modal_k1: breakdown.modal_k1,
                    loss_modal_k: breakdown.modal_k,
                    energy_penalty: breakdown.energy_penalty,
                    dirichlet_energy: epoch_energy,
                    lr: schedule.lr(epoch),
                    grad_norm,
                    sp_iterations: if self.cfg.ablation.use_semantic_propagation {
                        self.cfg.sp_iterations
                    } else {
                        0
                    },
                    eval: epoch_eval,
                    resumed_from: state.resumed_from.take(),
                    rollbacks: state.rollbacks,
                };
                desalign_telemetry::emit(&record.to_json());
            }
            state.next_epoch = epoch + 1;
            ran += 1;
        }
        state.report.seconds += t0.elapsed().as_secs_f64();
        ran
    }

    /// Phase 3: restores the best early-stop snapshot (when one was
    /// taken) and returns the finished report.
    pub fn end_training(&mut self, mut state: TrainState) -> TrainReport {
        if let Some(snap) = state.best_snapshot.take() {
            self.store.restore(&snap);
        }
        state.report.best_val_h1 = state.best_val;
        state.report.rollbacks = state.rollbacks;
        state.report.final_loss = state.report.loss_history.last().copied().unwrap_or_default();
        state.report
    }

    /// Arms a fault-injection plan for the next `fit`/`train_epochs`
    /// (resilience tests; see [`ChaosPlan`]).
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(plan);
    }

    /// Simulates losing `modality` for a deterministic `frac` of `side`'s
    /// entities mid-run: feature rows are zeroed and the presence masks
    /// (used by Semantic Propagation and the consistency boundary) are
    /// cleared, exactly as if the raw data had arrived incomplete.
    /// Returns the number of entities affected.
    ///
    /// Uses its own seeded stream, not the model RNG, so injecting the
    /// fault does not disturb the training trajectory up to that point.
    ///
    /// # Panics
    /// Panics for [`Modality::Structure`](crate::encoder::Modality) —
    /// the graph itself cannot go missing.
    pub fn inject_modality_dropout(&mut self, side: usize, modality: crate::encoder::Modality, frac: f32, seed: u64) -> usize {
        use crate::encoder::Modality;
        assert!(modality != Modality::Structure, "inject_modality_dropout: the structure modality cannot drop out");
        let input = &mut self.inputs[side];
        let n = input.n;
        let mut rng = rng_from_seed(seed);
        let k = ((n as f32) * frac.clamp(0.0, 1.0)).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(k);
        for &e in &idx {
            let (filled, raw, mask) = match modality {
                Modality::Relation => (&mut input.relation, &mut input.features.relation, &mut input.features.has_relation),
                Modality::Text => (&mut input.attribute, &mut input.features.attribute, &mut input.features.has_attribute),
                Modality::Visual => (&mut input.visual, &mut input.features.visual, &mut input.features.has_visual),
                Modality::Structure => unreachable!(),
            };
            for m in [filled, raw] {
                let cols = m.cols();
                m.as_mut_slice()[e * cols..(e + 1) * cols].fill(0.0);
            }
            mask[e] = false;
        }
        self.known[side] = crate::propagate::consistency_mask(&input.features);
        k
    }

    /// Captures the rollback snapshot at the current epoch boundary.
    fn capture_good(&self, state: &mut TrainState) {
        state.good = Some(GoodState {
            next_epoch: state.next_epoch,
            params: self.store.snapshot(),
            opt: state.opt.clone(),
            rng: self.rng.state(),
            best_val: state.best_val,
            best_snapshot: state.best_snapshot.clone(),
            patience_left: state.patience_left,
            loss_len: state.report.loss_history.len(),
            energy_len: state.report.energy_history.len(),
            traces_len: self.energy_traces.len(),
            last_loss: state.report.loss_history.last().map_or(f32::INFINITY, |b| b.total),
        });
    }

    /// Restores the last good snapshot and perturbs the sampling stream.
    fn rollback(&mut self, state: &mut TrainState) {
        let good = state.good.as_ref().expect("watchdog rollback without a snapshot");
        self.store.restore(&good.params);
        state.opt = good.opt.clone();
        state.best_val = good.best_val;
        state.best_snapshot = good.best_snapshot.clone();
        state.patience_left = good.patience_left;
        state.report.loss_history.truncate(good.loss_len);
        state.report.energy_history.truncate(good.energy_len);
        state.report.epochs_run = good.next_epoch;
        self.energy_traces.truncate(good.traces_len);
        state.next_epoch = good.next_epoch;
        state.rollbacks += 1;
        // Deterministic perturbation: replay from the snapshot's RNG
        // state advanced by the rollback count, so a data-driven fault
        // (a pathological batch) is not redrawn verbatim, yet the whole
        // recovery stays a pure function of (state, fault).
        let mut rng = Rng64::from_state(good.rng);
        for _ in 0..state.rollbacks {
            rng.next_u64();
        }
        self.rng = rng;
        desalign_telemetry::counter("train.rollbacks").incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesalignConfig;
    use crate::encoder::Modality;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    fn tiny_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 8;
        cfg.batch_size = 64;
        cfg
    }

    #[test]
    fn phased_training_equals_fit() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(31);
        let fingerprint = |m: &DesalignModel| -> Vec<u32> {
            m.params().ids().flat_map(|id| m.params().value(id).as_slice().iter().map(|x| x.to_bits())).collect()
        };
        let mut straight = DesalignModel::new(tiny_cfg(), &ds, 9);
        straight.fit(&ds);
        let mut phased = DesalignModel::new(tiny_cfg(), &ds, 9);
        let mut state = phased.begin_training(&ds);
        // Arbitrary uneven chunks: 3 + 1 + rest.
        phased.train_epochs(&mut state, 3);
        phased.train_epochs(&mut state, 1);
        phased.train_epochs(&mut state, usize::MAX);
        phased.end_training(state);
        assert_eq!(fingerprint(&straight), fingerprint(&phased), "chunked train_epochs diverged from fit");
    }

    #[test]
    fn nan_gradients_trigger_rollback_and_recovery() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(32);
        let mut model = DesalignModel::new(tiny_cfg(), &ds, 41);
        model.set_chaos(ChaosPlan { nan_grad_epochs: vec![3] });
        let mut state = model.begin_training(&ds);
        model.train_epochs(&mut state, usize::MAX);
        assert_eq!(state.rollbacks(), 1, "one injected NaN epoch must cause exactly one rollback");
        let report = model.end_training(state);
        assert_eq!(report.epochs_run, 8, "run recovers and completes");
        assert!(report.loss_history.iter().all(|b| b.total.is_finite()), "no NaN epoch may reach the report");
        for id in model.params().ids() {
            assert!(model.params().value(id).as_slice().iter().all(|x| x.is_finite()), "weights stayed clean");
        }
    }

    #[test]
    fn watchdog_gives_up_after_max_rollbacks() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(33);
        let mut cfg = tiny_cfg();
        cfg.watchdog.max_rollbacks = 2;
        let mut model = DesalignModel::new(cfg, &ds, 43);
        // More injected faults than the budget allows.
        model.set_chaos(ChaosPlan { nan_grad_epochs: vec![0, 1, 2, 3, 4] });
        let mut state = model.begin_training(&ds);
        model.train_epochs(&mut state, usize::MAX);
        assert!(state.stopped(), "run must stop after exhausting the rollback budget");
        assert_eq!(state.rollbacks(), 3, "budget of 2 means the 3rd rollback gives up");
        for id in model.params().ids() {
            assert!(model.params().value(id).as_slice().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn disabled_watchdog_lets_nan_through() {
        // Negative control: the rollback machinery really is what keeps
        // the weights finite. The fault goes into the final epoch — the
        // autodiff tape (rightly) refuses to forward NaN weights, so a
        // mid-run fault without the watchdog would panic, not limp on.
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(34);
        let mut cfg = tiny_cfg();
        cfg.watchdog.enabled = false;
        let mut model = DesalignModel::new(cfg, &ds, 47);
        model.set_chaos(ChaosPlan { nan_grad_epochs: vec![7] });
        model.fit(&ds);
        let poisoned = model
            .params()
            .ids()
            .any(|id| model.params().value(id).as_slice().iter().any(|x| !x.is_finite()));
        assert!(poisoned, "without the watchdog the NaN update corrupts the weights");
    }

    #[test]
    fn modality_dropout_survives_training() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(35);
        let mut model = DesalignModel::new(tiny_cfg(), &ds, 53);
        let mut state = model.begin_training(&ds);
        model.train_epochs(&mut state, 4);
        let dropped = model.inject_modality_dropout(0, Modality::Visual, 0.5, 99);
        assert!(dropped > 0);
        model.train_epochs(&mut state, usize::MAX);
        assert_eq!(state.rollbacks(), 0, "dropout is degraded data, not divergence");
        let report = model.end_training(state);
        assert_eq!(report.epochs_run, 8);
        assert!(report.loss_history.iter().all(|b| b.total.is_finite()));
        let metrics = model.evaluate(&ds);
        assert!(metrics.hits_at_1.is_finite());
    }

    #[test]
    fn dropout_is_deterministic_and_updates_masks() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(36);
        let run = || {
            let mut m = DesalignModel::new(tiny_cfg(), &ds, 57);
            let k = m.inject_modality_dropout(1, Modality::Text, 0.3, 7);
            (k, m.inputs[1].features.has_attribute.clone())
        };
        let (k1, mask1) = run();
        let (k2, mask2) = run();
        assert_eq!((k1, &mask1), (k2, &mask2));
        assert!(mask1.iter().filter(|&&b| !b).count() >= k1);
    }
}
