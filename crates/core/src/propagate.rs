//! Semantic Propagation at inference time (§IV-C, Algorithm 1 lines 11–15).
//!
//! After training, the final semantic embeddings `X_s`, `X_t` are refined by
//! the explicit-Euler gradient flow of the Dirichlet energy: `x ← Ãx`
//! (Eq. 22), which reconstructs the missing part of the semantic features
//! from neighbours. Each round produces a pairwise-similarity matrix
//! `Ω_j`; the final decision matrix is their mean, which uses every
//! intermediate estimate and preserves the original distribution of the
//! consistent features.

use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_graph::{propagate_features, Csr, PropagationConfig};
use desalign_mmkg::ModalFeatures;
use desalign_tensor::Matrix;

/// The semantic-consistency mask used as the propagation boundary: an
/// entity is *consistent* when every optional modality (text attributes and
/// image) is present. Structure/relations are always present on connected
/// entities, so the optional modalities are what drive ε_c vs ε_o.
pub fn consistency_mask(features: &ModalFeatures) -> Vec<bool> {
    features
        .has_attribute
        .iter()
        .zip(&features.has_visual)
        .map(|(&a, &v)| a && v)
        .collect()
}

/// Runs Semantic Propagation on both graphs and averages the per-round
/// similarity matrices (Algorithm 1, line 15).
///
/// - `x_s`, `x_t` — final semantic embeddings from the encoder;
/// - `adj_*` — symmetrically normalized adjacencies `Ã` (with self-loops);
/// - `known_*` — boundary masks (see [`consistency_mask`]);
/// - `iterations` — `n_p` (0 reduces to plain cosine similarity);
/// - `reset_known` — enforce the hard boundary condition `x_c(t) = x_c`
///   (the paper's §V-F practice lets consistent features join propagation,
///   i.e. `false`).
#[allow(clippy::too_many_arguments)]
pub fn semantic_propagation_similarity(
    x_s: &Matrix,
    x_t: &Matrix,
    adj_s: &Csr,
    adj_t: &Csr,
    known_s: &[bool],
    known_t: &[bool],
    iterations: usize,
    reset_known: bool,
) -> SimilarityMatrix {
    if iterations == 0 {
        return cosine_similarity(x_s, x_t);
    }
    let (states_s, states_t) =
        semantic_propagation_states(x_s, x_t, adj_s, adj_t, known_s, known_t, iterations, reset_known);
    let rounds: Vec<SimilarityMatrix> =
        states_s.iter().zip(&states_t).map(|(a, b)| cosine_similarity(a, b)).collect();
    SimilarityMatrix::average(&rounds)
}

/// The per-round SP states behind [`semantic_propagation_similarity`]:
/// `iterations + 1` matrices per side (round 0 is the input). Exposed so
/// the retrieval layer can search over SP-refined embeddings without ever
/// forming the dense similarity matrix. `iterations == 0` returns the
/// inputs unchanged as a single round.
#[allow(clippy::too_many_arguments)]
pub fn semantic_propagation_states(
    x_s: &Matrix,
    x_t: &Matrix,
    adj_s: &Csr,
    adj_t: &Csr,
    known_s: &[bool],
    known_t: &[bool],
    iterations: usize,
    reset_known: bool,
) -> (Vec<Matrix>, Vec<Matrix>) {
    if iterations == 0 {
        return (vec![x_s.clone()], vec![x_t.clone()]);
    }
    let _span = desalign_telemetry::span("semantic_propagation");
    let cfg = PropagationConfig { iterations, step: 1.0, reset_known };
    // The two graphs are independent; run their propagations concurrently
    // (each internally row-parallelizes its SpMM — nested regions are fine).
    desalign_parallel::par_join(
        || propagate_features(adj_s, x_s, known_s, &cfg),
        || propagate_features(adj_t, x_t, known_t, &cfg),
    )
}

/// Per-modality Semantic Propagation: each modality block of the joint
/// embedding is propagated independently, with that modality's presence
/// mask as the boundary — entities owning the modality keep their exact
/// features, entities missing it receive the neighbour interpolation
/// (replacing the noise fill). Blocks whose modality every entity owns are
/// left untouched. This is the sharp version of §IV-C's goal: interpolate
/// the *missing* semantics only, never blur the present ones.
///
/// `blocks` gives each modality's column width in concatenation order and
/// `masks_*[m][i]` says entity `i` owns modality `m`.
#[allow(clippy::too_many_arguments)]
pub fn per_modality_propagation_similarity(
    x_s: &Matrix,
    x_t: &Matrix,
    adj_s: &Csr,
    adj_t: &Csr,
    masks_s: &[Vec<bool>],
    masks_t: &[Vec<bool>],
    blocks: &[usize],
    iterations: usize,
) -> SimilarityMatrix {
    if iterations == 0 {
        assert_valid_blocks(x_s, masks_s, masks_t, blocks);
        return cosine_similarity(x_s, x_t);
    }
    let (states_s, states_t) =
        per_modality_propagation_states(x_s, x_t, adj_s, adj_t, masks_s, masks_t, blocks, iterations);
    let rounds: Vec<SimilarityMatrix> =
        states_s.iter().zip(&states_t).map(|(a, b)| cosine_similarity(a, b)).collect();
    SimilarityMatrix::average(&rounds)
}

fn assert_valid_blocks(x_s: &Matrix, masks_s: &[Vec<bool>], masks_t: &[Vec<bool>], blocks: &[usize]) {
    assert_eq!(masks_s.len(), blocks.len(), "per_modality_propagation: {} masks for {} blocks", masks_s.len(), blocks.len());
    assert_eq!(masks_t.len(), blocks.len(), "per_modality_propagation: mask/block count mismatch");
    let total: usize = blocks.iter().sum();
    assert_eq!(x_s.cols(), total, "per_modality_propagation: embedding width {} != block sum {total}", x_s.cols());
}

/// The per-round states behind [`per_modality_propagation_similarity`]:
/// `iterations + 1` matrices per side with only incomplete modality blocks
/// rewritten per round. Exposed for the retrieval layer. `iterations == 0`
/// returns the inputs unchanged as a single round.
#[allow(clippy::too_many_arguments)]
pub fn per_modality_propagation_states(
    x_s: &Matrix,
    x_t: &Matrix,
    adj_s: &Csr,
    adj_t: &Csr,
    masks_s: &[Vec<bool>],
    masks_t: &[Vec<bool>],
    blocks: &[usize],
    iterations: usize,
) -> (Vec<Matrix>, Vec<Matrix>) {
    assert_valid_blocks(x_s, masks_s, masks_t, blocks);
    if iterations == 0 {
        return (vec![x_s.clone()], vec![x_t.clone()]);
    }
    let _span = desalign_telemetry::span("semantic_propagation");

    // Fused gather→propagate→scatter per incomplete block: the block's
    // columns are gathered once, each round runs the full-step boundary
    // kernel (`Ã·x` with known rows replaced by their originals — see
    // `Csr::spmm_skip_into`) into a ping-pong buffer, and the new state is
    // scattered straight into that round's output columns. Equivalent to
    // `propagate_features` with `step: 1.0, reset_known: true` bit-for-bit,
    // but without materializing a per-round state vector per block.
    let propagate_side = |x: &Matrix, adj: &Csr, masks: &[Vec<bool>]| -> Vec<Matrix> {
        let mut round_states: Vec<Matrix> = vec![x.clone(); iterations + 1];
        let n = x.rows();
        let mut off = 0;
        for (m, &w) in blocks.iter().enumerate() {
            let complete = masks[m].iter().all(|&b| b);
            if !complete {
                if desalign_telemetry::enabled() {
                    desalign_telemetry::counter("sp.iterations").add(iterations as u64);
                    let skipped = masks[m].iter().filter(|&&k| k).count();
                    desalign_telemetry::counter("sp.rows_skipped").add((skipped * iterations) as u64);
                }
                let x0_block = x.slice_cols(off, off + w);
                let mut cur = x0_block.clone();
                let mut next = Matrix::zeros(n, w);
                // Round 0 is the input itself — `round_states[0]` already
                // holds the block's columns, so scattering starts at 1.
                for state in round_states.iter_mut().skip(1) {
                    adj.spmm_skip_into(&cur, &masks[m], &x0_block, &mut next);
                    std::mem::swap(&mut cur, &mut next);
                    for i in 0..n {
                        state.row_mut(i)[off..off + w].copy_from_slice(cur.row(i));
                    }
                }
            }
            off += w;
        }
        round_states
    };
    desalign_parallel::par_join(
        || propagate_side(x_s, adj_s, masks_s),
        || propagate_side(x_t, adj_t, masks_t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::{normal_matrix, rng_from_seed};

    #[test]
    fn zero_iterations_is_plain_cosine() {
        let mut rng = rng_from_seed(1);
        let x_s = normal_matrix(&mut rng, 4, 3, 0.0, 1.0);
        let x_t = normal_matrix(&mut rng, 4, 3, 0.0, 1.0);
        let g = UndirectedGraph::new(4, vec![(0, 1), (2, 3)]);
        let a = g.normalized_adjacency(true);
        let sp = semantic_propagation_similarity(&x_s, &x_t, &a, &a, &[true; 4], &[true; 4], 0, true);
        let plain = cosine_similarity(&x_s, &x_t);
        assert_eq!(sp.scores(), plain.scores());
    }

    #[test]
    fn propagation_recovers_a_zeroed_entity() {
        // Aligned graphs; source entity 2's features are wiped. Plain cosine
        // cannot rank it; after SP its neighbours reconstruct it.
        let g = UndirectedGraph::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 3)]);
        let a = g.normalized_adjacency(true);
        let mut rng = rng_from_seed(2);
        let x_t = normal_matrix(&mut rng, 6, 8, 0.0, 1.0);
        let mut x_s = x_t.clone();
        for v in x_s.row_mut(2) {
            *v = 0.0;
        }
        let known: Vec<bool> = (0..6).map(|i| i != 2).collect();
        let plain = cosine_similarity(&x_s, &x_t);
        let sp = semantic_propagation_similarity(&x_s, &x_t, &a, &a, &known, &known, 3, true);
        // The diagonal score of the wiped entity improves under SP.
        assert!(sp.scores()[(2, 2)] > plain.scores()[(2, 2)] + 0.05, "SP {} vs plain {}", sp.scores()[(2, 2)], plain.scores()[(2, 2)]);
    }

    #[test]
    fn consistency_mask_requires_both_modalities() {
        let kg = desalign_mmkg::Mmkg {
            num_entities: 3,
            num_relations: 1,
            num_attributes: 2,
            rel_triples: vec![(0, 0, 1), (1, 0, 2)],
            attr_triples: vec![(0, 0), (1, 1)],
            images: vec![Some(vec![1.0]), None, Some(vec![0.5])],
        };
        let dims = desalign_mmkg::FeatureDims { relation: 4, attribute: 4, visual: 1 };
        let f = ModalFeatures::build(&kg, &dims);
        assert_eq!(consistency_mask(&f), vec![true, false, false]);
    }

    #[test]
    fn per_modality_only_touches_missing_entities() {
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let a = g.normalized_adjacency(true);
        let mut rng = rng_from_seed(7);
        let x = normal_matrix(&mut rng, 4, 4, 0.0, 1.0);
        // Two blocks of width 2: block 0 complete, block 1 missing at row 2.
        let masks = vec![vec![true; 4], vec![true, true, false, true]];
        let sim = per_modality_propagation_similarity(&x, &x, &a, &a, &masks, &masks, &[2, 2], 2);
        assert_eq!(sim.shape(), (4, 4));
        // Entities with complete features still self-match perfectly.
        for i in [0usize, 1, 3] {
            assert_eq!(sim.best_target(i), i);
        }
    }

    #[test]
    fn per_modality_zero_iterations_is_cosine() {
        let mut rng = rng_from_seed(8);
        let x_s = normal_matrix(&mut rng, 3, 4, 0.0, 1.0);
        let x_t = normal_matrix(&mut rng, 3, 4, 0.0, 1.0);
        let g = UndirectedGraph::new(3, vec![(0, 1)]);
        let a = g.normalized_adjacency(true);
        let masks = vec![vec![true; 3], vec![false; 3]];
        let sim = per_modality_propagation_similarity(&x_s, &x_t, &a, &a, &masks, &masks, &[2, 2], 0);
        assert_eq!(sim.scores(), cosine_similarity(&x_s, &x_t).scores());
    }

    #[test]
    fn averaging_includes_round_zero() {
        // With perfect embeddings, every round keeps the diagonal dominant,
        // and averaging cannot break a perfect match.
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let a = g.normalized_adjacency(true);
        let mut rng = rng_from_seed(3);
        let x = normal_matrix(&mut rng, 4, 6, 0.0, 1.0);
        let sim = semantic_propagation_similarity(&x, &x, &a, &a, &[true; 4], &[true; 4], 2, false);
        for i in 0..4 {
            assert_eq!(sim.best_target(i), i);
        }
    }
}
