//! The Multi-Modal Semantic Learning objective (§IV-B).
//!
//! Implements the optimization problem of **Proposition 3** (Eq. 15):
//!
//! `min  ℒ_task^(0) + ℒ_task^(k) + Σ_m (ℒ_m^(k−1) + ℒ_m^(k))`
//! `s.t. c_min ℒ(X^(k−1)) ≤ ℒ(X^(k)) ≤ c_max ℒ(X^(0))`
//!
//! The task losses are bidirectional in-batch InfoNCE over the joint
//! embeddings (Eq. 16–17); the per-modality losses additionally carry the
//! min-confidence weight `φ_m` that prevents aligning meaningful features
//! with the random noise filling a missing modality. The Dirichlet-energy
//! constraint is enforced as a hinge penalty on both graphs — this is the
//! mechanism that blocks the over-smoothing collapse of Proposition 2.

use crate::config::DesalignConfig;
use crate::encoder::EncodedGraph;
use desalign_autodiff::Var;
use desalign_graph::Csr;
use desalign_nn::Session;
use desalign_tensor::Matrix;
use std::rc::Rc;

/// Scalar components of one loss evaluation, for logging and the ablation
/// analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossBreakdown {
    /// Total optimized loss.
    pub total: f32,
    /// `ℒ_task^(0)` (early fusion).
    pub task0: f32,
    /// `ℒ_task^(k)` (late fusion).
    pub taskk: f32,
    /// `Σ_m ℒ_m^(k−1)`.
    pub modal_k1: f32,
    /// `Σ_m ℒ_m^(k)`.
    pub modal_k: f32,
    /// Energy-constraint hinge penalty (already weighted).
    pub energy_penalty: f32,
}

/// Builds the full MMSL loss for one batch of seed pairs.
///
/// `laplacians` are the per-side graph Laplacians used by the energy
/// constraint. Returns the loss node plus the scalar breakdown.
#[allow(clippy::too_many_arguments)]
pub fn mmsl_loss(
    sess: &mut Session<'_>,
    cfg: &DesalignConfig,
    enc_s: &EncodedGraph,
    enc_t: &EncodedGraph,
    batch: &[(usize, usize)],
    laplacians: (&Rc<Csr>, &Rc<Csr>),
) -> (Var, LossBreakdown) {
    assert!(!batch.is_empty(), "mmsl_loss: empty batch");
    let src_idx: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
    let tgt_idx: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());

    let mut terms: Vec<Var> = Vec::new();
    let mut breakdown = LossBreakdown::default();
    let ab = &cfg.ablation;

    // ℒ_task^(0): early-fusion joint embeddings, φ = 1 (Eq. 16 with h^Ori).
    if ab.use_loss_task0 {
        let z1 = sess.tape.gather_rows(enc_s.h_ori, Rc::clone(&src_idx));
        let z2 = sess.tape.gather_rows(enc_t.h_ori, Rc::clone(&tgt_idx));
        let l = sess.tape.info_nce_bidirectional(z1, z2, cfg.tau);
        breakdown.task0 = sess.tape.value(l)[(0, 0)];
        terms.push(l);
    }

    // ℒ_task^(k): late-fusion joint embeddings.
    if ab.use_loss_taskk {
        let z1 = sess.tape.gather_rows(enc_s.h_fus(), Rc::clone(&src_idx));
        let z2 = sess.tape.gather_rows(enc_t.h_fus(), Rc::clone(&tgt_idx));
        let l = sess.tape.info_nce_bidirectional(z1, z2, cfg.tau);
        breakdown.taskk = sess.tape.value(l)[(0, 0)];
        terms.push(l);
    }

    // Per-modality intra-modal losses at layers k and k−1, weighted by the
    // detached min-confidence φ_m (Eq. 17).
    let phi: Vec<Matrix> = (0..enc_s.modalities.len())
        .map(|m| {
            if ab.use_confidence_weighting {
                // Optionally rescale by |M| so a uniform confidence (1/|M|
                // each) gives unit weight; only *relative* confidence then
                // down-weights a pair.
                let scale = if cfg.phi_rescale { enc_s.modalities.len() as f32 } else { 1.0 };
                let cap = if cfg.phi_rescale { 2.0 } else { 1.0 };
                let ws = sess.tape.value(enc_s.confidence[m]).clone();
                let wt = sess.tape.value(enc_t.confidence[m]).clone();
                Matrix::column(batch.iter().map(|&(s, t)| (scale * ws[(s, 0)].min(wt[(t, 0)])).min(cap)).collect())
            } else {
                Matrix::full(batch.len(), 1, 1.0)
            }
        })
        .collect();

    let last = enc_s.fused_layers.len() - 1;
    #[allow(clippy::needless_range_loop)] // `m` indexes parallel per-modality arrays
    for m in 0..enc_s.modalities.len() {
        if ab.use_loss_mk {
            let z1 = sess.tape.gather_rows(enc_s.fused_layers[last][m], Rc::clone(&src_idx));
            let z2 = sess.tape.gather_rows(enc_t.fused_layers[last][m], Rc::clone(&tgt_idx));
            let phi_var = sess.input(phi[m].clone());
            let l = sess.tape.info_nce_weighted(z1, z2, cfg.tau, phi_var);
            breakdown.modal_k += sess.tape.value(l)[(0, 0)];
            terms.push(l);
        }
        if ab.use_loss_mk1 {
            // Layer k−1: either the branch embedding h^m (which feeds the
            // early-fusion evaluation embedding h^Ori and so benefits from
            // direct alignment signal) or the penultimate CAW layer.
            let (h_s, h_t) = if cfg.modal_k1_on_branch || enc_s.fused_layers.len() < 2 {
                (enc_s.modal[m], enc_t.modal[m])
            } else {
                (enc_s.fused_layers[last - 1][m], enc_t.fused_layers[last - 1][m])
            };
            let z1 = sess.tape.gather_rows(h_s, Rc::clone(&src_idx));
            let z2 = sess.tape.gather_rows(h_t, Rc::clone(&tgt_idx));
            let phi_var = sess.input(phi[m].clone());
            let l = sess.tape.info_nce_weighted(z1, z2, cfg.tau, phi_var);
            breakdown.modal_k1 += sess.tape.value(l)[(0, 0)];
            terms.push(l);
        }
    }

    // Dirichlet-energy constraint of Eq. 15 as a hinge penalty per side:
    // relu(c_min·ℒ(X^(k−1)) − ℒ(X^(k))) + relu(ℒ(X^(k)) − c_max·ℒ(X^(0))).
    if ab.use_energy_constraint && cfg.energy_weight > 0.0 {
        for (enc, lap) in [(enc_s, laplacians.0), (enc_t, laplacians.1)] {
            let n = sess.tape.value(enc.h_ori).rows();
            let d_total = sess.tape.value(enc.h_ori).cols();
            let norm = 1.0 / (n * d_total) as f32;
            let e0 = sess.tape.dirichlet_energy(Rc::clone(lap), enc.h_ori);
            let ek = sess.tape.dirichlet_energy(Rc::clone(lap), enc.h_fus());
            let ek1 = sess.tape.dirichlet_energy(Rc::clone(lap), enc.h_fus_prev());
            // Lower hinge: energy must not collapse below c_min·ℒ(X^(k−1)).
            let lower_ref = sess.tape.scale(ek1, cfg.c_min);
            let lower_gap = sess.tape.sub(lower_ref, ek);
            let lower_pen = sess.tape.relu(lower_gap);
            // Upper hinge: no over-separating beyond c_max·ℒ(X^(0)).
            let upper_ref = sess.tape.scale(e0, cfg.c_max);
            let upper_gap = sess.tape.sub(ek, upper_ref);
            let upper_pen = sess.tape.relu(upper_gap);
            let pen = sess.tape.add(lower_pen, upper_pen);
            let pen = sess.tape.scale(pen, cfg.energy_weight * norm);
            breakdown.energy_penalty += sess.tape.value(pen)[(0, 0)];
            terms.push(pen);
        }
    }

    assert!(!terms.is_empty(), "mmsl_loss: all loss terms ablated away");
    let mut total = terms[0];
    for &t in &terms[1..] {
        total = sess.tape.add(total, t);
    }
    breakdown.total = sess.tape.value(total)[(0, 0)];
    (total, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{GraphInputs, MultiModalEncoder};
    use desalign_mmkg::{DatasetSpec, SynthConfig};
    use desalign_nn::ParamStore;
    use desalign_tensor::rng_from_seed;

    fn setup() -> (desalign_mmkg::AlignmentDataset, DesalignConfig) {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        (SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(5), cfg)
    }

    fn eval_loss(cfg: &DesalignConfig, ds: &desalign_mmkg::AlignmentDataset, seed: u64) -> LossBreakdown {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, cfg, ds);
        let in_s = GraphInputs::prepare(&ds.source, cfg, &mut rng);
        let in_t = GraphInputs::prepare(&ds.target, cfg, &mut rng);
        let lap_s = Rc::new(ds.source.graph().laplacian());
        let lap_t = Rc::new(ds.target.graph().laplacian());
        let mut sess = Session::new(&store);
        let enc_s = enc.forward(&mut sess, &in_s, 0);
        let enc_t = enc.forward(&mut sess, &in_t, 1);
        let (loss, breakdown) = mmsl_loss(&mut sess, cfg, &enc_s, &enc_t, &ds.train_pairs, (&lap_s, &lap_t));
        let grads = sess.backward(loss);
        assert!(!grads.is_empty());
        breakdown
    }

    #[test]
    fn loss_is_finite_and_composed() {
        let (ds, cfg) = setup();
        let b = eval_loss(&cfg, &ds, 1);
        assert!(b.total.is_finite() && b.total > 0.0);
        let sum = b.task0 + b.taskk + b.modal_k + b.modal_k1 + b.energy_penalty;
        assert!((b.total - sum).abs() < 1e-3, "total {} != sum of parts {sum}", b.total);
    }

    #[test]
    fn ablations_zero_their_terms() {
        let (ds, mut cfg) = setup();
        cfg.ablation.use_loss_task0 = false;
        cfg.ablation.use_energy_constraint = false;
        let b = eval_loss(&cfg, &ds, 2);
        assert_eq!(b.task0, 0.0);
        assert_eq!(b.energy_penalty, 0.0);
        assert!(b.taskk > 0.0);
    }

    #[test]
    fn confidence_weighting_changes_modal_losses() {
        let (ds, mut cfg) = setup();
        let with = eval_loss(&cfg, &ds, 3);
        cfg.ablation.use_confidence_weighting = false;
        let without = eval_loss(&cfg, &ds, 3);
        // φ ≤ 1 per pair, so weighted modal losses are no larger.
        assert!(with.modal_k <= without.modal_k + 1e-4, "φ-weighted {} vs unweighted {}", with.modal_k, without.modal_k);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let (ds, cfg) = setup();
        let mut rng = rng_from_seed(4);
        let mut store = ParamStore::new();
        let enc = MultiModalEncoder::new(&mut store, &mut rng, &cfg, &ds);
        let in_s = GraphInputs::prepare(&ds.source, &cfg, &mut rng);
        let in_t = GraphInputs::prepare(&ds.target, &cfg, &mut rng);
        let lap_s = Rc::new(ds.source.graph().laplacian());
        let lap_t = Rc::new(ds.target.graph().laplacian());
        let mut sess = Session::new(&store);
        let enc_s = enc.forward(&mut sess, &in_s, 0);
        let enc_t = enc.forward(&mut sess, &in_t, 1);
        let _ = mmsl_loss(&mut sess, &cfg, &enc_s, &enc_t, &[], (&lap_s, &lap_t));
    }
}
