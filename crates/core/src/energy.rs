//! Dirichlet-energy instrumentation: per-layer energy traces and the
//! Proposition 2 singular-value bounds.
//!
//! These diagnostics are what Section III uses to *explain* semantic
//! inconsistency: under missing modalities, unconstrained training drives
//! layer weights' singular values (hence the layer's Dirichlet energy)
//! towards zero — over-smoothing. The `energy_trace` benchmark binary plots
//! exactly this.

use desalign_graph::{dirichlet_energy, singular_value_range, Csr};
use desalign_tensor::Matrix;

/// Per-layer Dirichlet energies at one training epoch:
/// `[ℒ(X^(0)), ℒ(X^(k−1)), ℒ(X^(k))]` for each side.
#[derive(Clone, Copy, Debug)]
pub struct EnergyTrace {
    /// Training epoch the trace was taken at.
    pub epoch: usize,
    /// Source-graph energies `[E₀, E_{k−1}, E_k]`.
    pub source: [f32; 3],
    /// Target-graph energies `[E₀, E_{k−1}, E_k]`.
    pub target: [f32; 3],
}

impl EnergyTrace {
    /// Ratio `ℒ(X^(k)) / ℒ(X^(0))` averaged over both sides — the
    /// over-smoothing indicator (→ 0 means collapse).
    pub fn smoothing_ratio(&self) -> f32 {
        let r = |e: &[f32; 3]| if e[0] > 1e-12 { e[2] / e[0] } else { 0.0 };
        (r(&self.source) + r(&self.target)) / 2.0
    }
}

/// Model-level energy diagnostics collected after training.
#[derive(Clone, Debug, Default)]
pub struct EnergyDiagnostics {
    /// Energy traces sampled during training.
    pub traces: Vec<EnergyTrace>,
    /// Extreme singular values `(σ_min, σ_max)` of each per-modality FC
    /// weight — the `√p_min`, `√p_max` of Proposition 2.
    pub fc_singular_values: Vec<(char, (f32, f32))>,
}

impl EnergyDiagnostics {
    /// True when any recorded trace shows a collapsed final-layer energy
    /// (over-smoothing by the Section III criterion).
    pub fn shows_over_smoothing(&self, threshold: f32) -> bool {
        self.traces.iter().any(|t| t.smoothing_ratio() < threshold)
    }
}

/// The two-sided bound of **Proposition 2** for a linear layer
/// `X^{(k)} = X^{(k-1)} W`:
///
/// `p_min ℒ(X^{(k-1)}) ≤ ℒ(X^{(k)}) ≤ p_max ℒ(X^{(k-1)})`
///
/// with `p_min/p_max` the squared extreme singular values of `W`. Returns
/// `(lower, actual, upper)`.
pub fn proposition2_bounds(laplacian: &Csr, x_prev: &Matrix, w: &Matrix) -> (f32, f32, f32) {
    let (smin, smax) = singular_value_range(w, 600, 1e-7);
    let e_prev = dirichlet_energy(laplacian, x_prev);
    let x_next = x_prev.matmul(w);
    let e_next = dirichlet_energy(laplacian, &x_next);
    (smin * smin * e_prev, e_next, smax * smax * e_prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::{glorot_uniform, normal_matrix, rng_from_seed};

    #[test]
    fn proposition2_holds_for_random_layers() {
        let g = UndirectedGraph::new(10, (0..10).map(|i| (i, (i + 1) % 10)));
        let lap = g.laplacian();
        let mut rng = rng_from_seed(1);
        for _ in 0..10 {
            let x = normal_matrix(&mut rng, 10, 6, 0.0, 1.0);
            let w = glorot_uniform(&mut rng, 6, 6);
            let (lower, actual, upper) = proposition2_bounds(&lap, &x, &w);
            assert!(actual >= lower - 1e-3, "Prop. 2 lower bound violated: {actual} < {lower}");
            assert!(actual <= upper + 1e-3, "Prop. 2 upper bound violated: {actual} > {upper}");
        }
    }

    #[test]
    fn near_singular_weight_collapses_energy() {
        // The over-smoothing mechanism of Section III: a weight matrix with
        // tiny singular values squeezes the Dirichlet energy towards zero.
        let g = UndirectedGraph::new(8, (0..8).map(|i| (i, (i + 1) % 8)));
        let lap = g.laplacian();
        let mut rng = rng_from_seed(2);
        let x = normal_matrix(&mut rng, 8, 4, 0.0, 1.0);
        let w = desalign_tensor::Matrix::eye(4).scale(1e-3);
        let (_, actual, upper) = proposition2_bounds(&lap, &x, &w);
        let e_prev = dirichlet_energy(&lap, &x);
        assert!(actual < e_prev * 1e-4, "energy should collapse: {actual} vs {e_prev}");
        assert!(upper < e_prev * 1e-4);
    }

    #[test]
    fn smoothing_ratio_detects_collapse() {
        let healthy = EnergyTrace { epoch: 0, source: [1.0, 0.9, 0.8], target: [1.0, 0.9, 0.85] };
        let collapsed = EnergyTrace { epoch: 1, source: [1.0, 0.1, 0.001], target: [1.0, 0.05, 0.002] };
        assert!(healthy.smoothing_ratio() > 0.5);
        assert!(collapsed.smoothing_ratio() < 0.01);
        let diag = EnergyDiagnostics { traces: vec![healthy, collapsed], fc_singular_values: vec![] };
        assert!(diag.shows_over_smoothing(0.1));
        let diag = EnergyDiagnostics { traces: vec![healthy], fc_singular_values: vec![] };
        assert!(!diag.shows_over_smoothing(0.1));
    }
}
