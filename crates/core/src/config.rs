//! Hyperparameters, with the paper's defaults (§V-A4) and a laptop-scale
//! profile used by tests and the synthetic benchmarks.

use desalign_mmkg::FeatureDims;
use desalign_util::{json, DesalignError, Json, ToJson};

/// Ablation switches — each corresponds to one bar of Figure 3 (left).
#[derive(Clone, Copy, Debug)]
pub struct Ablation {
    /// `w/o g` — drop the graph-structure modality.
    pub use_structure: bool,
    /// `w/o r` — drop the relation modality.
    pub use_relation: bool,
    /// `w/o t` — drop the text-attribute modality.
    pub use_text: bool,
    /// `w/o v` — drop the visual modality.
    pub use_visual: bool,
    /// `w/o ℒ_task^(0)` — drop the early-fusion task loss.
    pub use_loss_task0: bool,
    /// `w/o ℒ_task^(k)` — drop the late-fusion task loss.
    pub use_loss_taskk: bool,
    /// `w/o ℒ_m^(k-1)` — drop the penultimate-layer intra-modal losses.
    pub use_loss_mk1: bool,
    /// `w/o ℒ_m^(k)` — drop the final-layer intra-modal losses.
    pub use_loss_mk: bool,
    /// `w/o PP` — disable Semantic Propagation at inference.
    pub use_semantic_propagation: bool,
    /// `w/o energy` — disable the Dirichlet-energy constraint penalty
    /// (the MMSL bound of Proposition 3).
    pub use_energy_constraint: bool,
    /// `w/o φ` — disable min-confidence loss weighting.
    pub use_confidence_weighting: bool,
    /// Weight the joint embeddings by the modal confidences `w̃^m`
    /// (Eq. 14); when disabled, modalities are concatenated uniformly.
    pub use_confidence_fusion: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            use_structure: true,
            use_relation: true,
            use_text: true,
            use_visual: true,
            use_loss_task0: true,
            use_loss_taskk: true,
            use_loss_mk1: true,
            use_loss_mk: true,
            use_semantic_propagation: true,
            use_energy_constraint: true,
            use_confidence_weighting: true,
            use_confidence_fusion: true,
        }
    }
}

impl Ablation {
    /// Number of active modalities.
    pub fn num_modalities(&self) -> usize {
        [self.use_structure, self.use_relation, self.use_text, self.use_visual].iter().filter(|&&b| b).count()
    }
}

/// Training watchdog thresholds (see `docs/RELIABILITY.md`).
///
/// The watchdog inspects every epoch *after* the backward pass and
/// *before* the optimizer step — gradients, loss, and the sampled
/// Dirichlet energy — so a poisoned update can be rejected while the
/// weights are still clean. On a trip it rolls the run back to the last
/// good in-memory snapshot with a deterministically perturbed sampling
/// stream.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Master switch; when off, epochs are never checked and no snapshots
    /// are kept.
    pub enabled: bool,
    /// A finite loss larger than `spike_factor ×` the last good loss
    /// counts as divergence. Keep well above natural epoch-to-epoch noise;
    /// non-finite values trip regardless of this factor.
    pub spike_factor: f32,
    /// Capture a rollback snapshot every this many epochs (≥ 1).
    pub snapshot_every: usize,
    /// Give up (stop training on the last good state) after this many
    /// rollbacks in one run.
    pub max_rollbacks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { enabled: true, spike_factor: 100.0, snapshot_every: 1, max_rollbacks: 3 }
    }
}

/// Which structure-branch encoder to use (Eq. 7). The paper uses a GAT;
/// a vanilla GCN is provided for the architecture study (and is stronger
/// at very small graph scales, where attention heads are data-starved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructureEncoderKind {
    /// Graph attention network (paper default).
    Gat,
    /// Two-layer mean-pooling GCN.
    Gcn,
}

/// Which retrieval backend evaluation, CSLS decoding, and pseudo-pair
/// mining run through (ROADMAP item 2: sub-quadratic retrieval).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrievalBackend {
    /// Historical path: materialize the dense SP-averaged similarity
    /// matrix. Bit-for-bit identical to every pre-retrieval release;
    /// memory is `O(n_s × n_t)`.
    Dense,
    /// Blocked exact scan over SP-flattened embeddings — never builds the
    /// dense matrix; scores are exact cosines of the concatenated
    /// per-round SP states.
    Exact,
    /// Deterministic IVF approximate index over the same embeddings —
    /// sub-quadratic search, recall-gated by `ci.sh` / `retrieval_bench`.
    Ivf,
}

/// Sub-quadratic retrieval settings.
#[derive(Clone, Copy, Debug)]
pub struct RetrievalSettings {
    /// Backend selection (default [`RetrievalBackend::Dense`], preserving
    /// historical results exactly).
    pub backend: RetrievalBackend,
    /// IVF cell count; `0` selects `⌈√n⌉` automatically.
    pub nlist: usize,
    /// IVF cells probed per query (recall/speed trade-off knob). Must be
    /// ≥ 1.
    pub nprobe: usize,
    /// IVF k-means refinement rounds.
    pub kmeans_iters: usize,
    /// CSLS neighbourhood size `k` used by CSLS decoding. Must be ≥ 1 and
    /// smaller than either graph's entity count (larger values would be
    /// silently clamped by the rescaler — see `try_csls_rescale`).
    pub csls_k: usize,
}

impl Default for RetrievalSettings {
    fn default() -> Self {
        Self { backend: RetrievalBackend::Dense, nlist: 0, nprobe: 16, kmeans_iters: 8, csls_k: 10 }
    }
}

impl RetrievalSettings {
    /// The embedding-level `desalign-eval` configuration this selects.
    /// [`RetrievalBackend::Dense`] maps to the exact backend (same scores,
    /// no dense matrix) for APIs that only exist at the embedding level.
    pub fn eval_config(&self, seed: u64) -> desalign_eval::RetrievalConfig {
        desalign_eval::RetrievalConfig {
            kind: match self.backend {
                RetrievalBackend::Ivf => desalign_eval::IndexKind::Ivf,
                _ => desalign_eval::IndexKind::Exact,
            },
            ivf: desalign_eval::IvfParams {
                nlist: self.nlist,
                nprobe: self.nprobe,
                kmeans_iters: self.kmeans_iters,
                seed,
            },
        }
    }
}

/// Out-of-core neighborhood-sampled training (streaming data plane).
///
/// When enabled, [`DesalignModel::fit`](crate::DesalignModel::fit) trains
/// by iterating contiguous source-entity blocks — the same blocking the
/// shard format uses (`docs/DATA_FORMAT.md`) — encoding only each block's
/// [`sample_neighborhood`](desalign_graph::sample_neighborhood) subgraph
/// per step instead of the full graphs. Off by default: the full-graph
/// path (and every fingerprint gated on it) is untouched.
#[derive(Clone, Copy, Debug)]
pub struct SampledTrainingSettings {
    /// Route training through the block-sampled mini-batch loop.
    pub enabled: bool,
    /// Source entities per block (mirrors `shard_entities`; must be ≥ 1
    /// when enabled).
    pub block_entities: usize,
    /// Maximum sampled out-of-block neighbors (halo) per core entity.
    /// `0` trains each block as an isolated induced subgraph.
    pub halo_per_node: usize,
}

impl Default for SampledTrainingSettings {
    fn default() -> Self {
        Self { enabled: false, block_entities: 512, halo_per_node: 8 }
    }
}

/// Full DESAlign configuration.
#[derive(Clone, Debug)]
pub struct DesalignConfig {
    /// Unified hidden dimension `d` (paper: 300).
    pub hidden_dim: usize,
    /// Raw feature dims for BoW / vision inputs (paper: 1000/1000/2048).
    pub feature_dims: FeatureDims,
    /// Structure encoder architecture.
    pub structure_encoder: StructureEncoderKind,
    /// GAT attention heads (paper: 2).
    pub gat_heads: usize,
    /// GAT layers (paper: 2).
    pub gat_layers: usize,
    /// CAW multi-attention heads `N_h` (paper: 1).
    pub caw_heads: usize,
    /// Semantic-encoder depth `k` — number of stacked CAW blocks; the
    /// Proposition 3 constraint couples layers `k`, `k−1` and `0`.
    pub caw_layers: usize,
    /// Contrastive temperature `τ` (paper: 0.1).
    pub tau: f32,
    /// Training epochs (paper: 500).
    pub epochs: usize,
    /// Pairs per contrastive batch (paper: 3500; in-batch negatives).
    pub batch_size: usize,
    /// AdamW peak learning rate.
    pub lr: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Warmup fraction of the cosine schedule (paper: 0.15).
    pub warmup_frac: f32,
    /// Early-stopping patience in evaluations (0 disables).
    pub early_stop_patience: usize,
    /// Evaluate the validation split every this many epochs.
    pub eval_every: usize,
    /// Lower energy-bound coefficient `c_min` of Eq. 15 (in `(0, 1)`).
    pub c_min: f32,
    /// Upper energy-bound coefficient `c_max` of Eq. 15.
    pub c_max: f32,
    /// Weight of the energy-constraint penalty in the total loss.
    pub energy_weight: f32,
    /// Semantic Propagation rounds `n_p` (Figure 4; paper: 1 for bilingual,
    /// 2–3 for monolingual).
    pub sp_iterations: usize,
    /// Whether SP resets boundary (consistent) features each round. The
    /// paper's practice lets consistent features join the propagation
    /// (§V-F), i.e. `false`.
    pub sp_reset_known: bool,
    /// Per-modality SP: propagate each modality block independently with
    /// that modality's presence mask as the boundary, interpolating only
    /// missing blocks (see `per_modality_propagation_similarity`). When
    /// false, the joint embedding is propagated as one matrix (Alg. 1).
    pub sp_per_modality: bool,
    /// ℓ2-normalize each modality block inside the joint embeddings
    /// (Eq. 14) so no branch dominates by norm; disabled, blocks keep their
    /// learned norms (free norm-based modality weighting).
    pub fusion_normalize: bool,
    /// Compute `ℒ_m^(k−1)` on the branch embeddings `h^m` (true) or on the
    /// penultimate CAW layer (false).
    pub modal_k1_on_branch: bool,
    /// Rescale φ by |M| so uniform confidence gives unit weight.
    pub phi_rescale: bool,
    /// Mask absent modalities out of the Eq. 14 weighted fusion. An entity
    /// with no image (or no text) normally contributes its noise-filled
    /// feature row to the joint embedding; with masking on, that block's
    /// fusion weight is zeroed and the remaining modality weights are
    /// renormalized so the present modalities carry the entity's full
    /// representation. This is the true missing-modality degradation path
    /// (Prop. 3 robustness): noise rows stop polluting the joint embedding
    /// and the Dirichlet energy stays finite under arbitrary modality
    /// drop. Off by default to preserve the historical fusion exactly.
    pub mask_missing_modalities: bool,
    /// Blend factor α for the fusion weights of Eq. 14:
    /// `w_eff = α·w̃^m + (1−α)/|M|`. The modal confidences are estimated
    /// independently per graph, so fully trusting them (α = 1) makes the
    /// same modality carry different weights on the two sides of an aligned
    /// pair and scrambles the similarity; a small α keeps the adaptive
    /// signal while preserving cross-graph comparability.
    pub confidence_blend: f32,
    /// Training watchdog (NaN/spike rollback) thresholds.
    pub watchdog: WatchdogConfig,
    /// Sub-quadratic retrieval backend and its knobs.
    pub retrieval: RetrievalSettings,
    /// Out-of-core neighborhood-sampled training (off by default).
    pub sampled: SampledTrainingSettings,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl DesalignConfig {
    /// The paper's configuration (§V-A4) — intended for full-scale data.
    pub fn paper() -> Self {
        Self {
            hidden_dim: 300,
            feature_dims: FeatureDims { relation: 1000, attribute: 1000, visual: 2048 },
            structure_encoder: StructureEncoderKind::Gat,
            gat_heads: 2,
            gat_layers: 2,
            caw_heads: 1,
            caw_layers: 2,
            tau: 0.1,
            epochs: 500,
            batch_size: 3500,
            lr: 5e-3,
            weight_decay: 1e-4,
            warmup_frac: 0.15,
            early_stop_patience: 10,
            eval_every: 5,
            c_min: 0.33,
            c_max: 2.0,
            energy_weight: 0.05,
            sp_iterations: 3,
            sp_reset_known: false,
            sp_per_modality: true,
            fusion_normalize: false,
            modal_k1_on_branch: false,
            phi_rescale: true,
            mask_missing_modalities: false,
            confidence_blend: 0.25,
            watchdog: WatchdogConfig::default(),
            retrieval: RetrievalSettings::default(),
            sampled: SampledTrainingSettings::default(),
            ablation: Ablation::default(),
        }
    }

    /// Laptop-scale profile matched to the synthetic presets (`d = 64`,
    /// 60 epochs). Used by tests, examples, and the benchmark harness.
    pub fn fast() -> Self {
        Self {
            hidden_dim: 64,
            feature_dims: FeatureDims { relation: 128, attribute: 128, visual: 64 },
            structure_encoder: StructureEncoderKind::Gat,
            gat_heads: 2,
            gat_layers: 2,
            caw_heads: 1,
            caw_layers: 2,
            tau: 0.1,
            epochs: 60,
            batch_size: 512,
            lr: 5e-3,
            weight_decay: 1e-4,
            warmup_frac: 0.15,
            early_stop_patience: 0,
            eval_every: 10,
            c_min: 0.33,
            c_max: 2.0,
            energy_weight: 0.05,
            sp_iterations: 3,
            sp_reset_known: false,
            sp_per_modality: true,
            fusion_normalize: false,
            modal_k1_on_branch: false,
            phi_rescale: true,
            mask_missing_modalities: false,
            confidence_blend: 0.25,
            watchdog: WatchdogConfig::default(),
            retrieval: RetrievalSettings::default(),
            sampled: SampledTrainingSettings::default(),
            ablation: Ablation::default(),
        }
    }

    /// Validates hyperparameter ranges. Each violation is reported as a
    /// typed [`DesalignError`] with class `config` and the offending
    /// field name as the location.
    pub fn validate(&self) -> Result<(), DesalignError> {
        if self.hidden_dim == 0 || !self.hidden_dim.is_multiple_of(self.caw_heads) {
            return Err(DesalignError::config(
                "hidden_dim",
                format!("{} must be a positive multiple of caw_heads {}", self.hidden_dim, self.caw_heads),
            ));
        }
        if !(0.0..1.0).contains(&self.c_min) {
            return Err(DesalignError::config("c_min", format!("{} must lie in (0,1) (Proposition 3)", self.c_min)));
        }
        if self.c_max <= 0.0 {
            return Err(DesalignError::config("c_max", format!("{} must be positive", self.c_max)));
        }
        if self.tau <= 0.0 {
            return Err(DesalignError::config("tau", format!("{} must be positive", self.tau)));
        }
        if self.ablation.num_modalities() == 0 {
            return Err(DesalignError::config("ablation", "at least one modality must stay enabled"));
        }
        if self.caw_layers == 0 {
            return Err(DesalignError::config("caw_layers", "must be ≥ 1"));
        }
        if !(0.0..=1.0).contains(&self.confidence_blend) {
            return Err(DesalignError::config("confidence_blend", format!("{} must lie in [0,1]", self.confidence_blend)));
        }
        if self.watchdog.enabled {
            if self.watchdog.spike_factor <= 1.0 {
                return Err(DesalignError::config(
                    "watchdog.spike_factor",
                    format!("{} must exceed 1", self.watchdog.spike_factor),
                ));
            }
            if self.watchdog.snapshot_every == 0 {
                return Err(DesalignError::config("watchdog.snapshot_every", "must be ≥ 1"));
            }
        }
        if self.retrieval.csls_k == 0 {
            return Err(DesalignError::config(
                "retrieval.csls_k",
                "CSLS neighbourhood k must be ≥ 1 (0 would be silently clamped to 1 by the rescaler)",
            ));
        }
        if self.retrieval.nprobe == 0 {
            return Err(DesalignError::config("retrieval.nprobe", "must be ≥ 1 (0 cells probed would return nothing)"));
        }
        if self.sampled.enabled && self.sampled.block_entities == 0 {
            return Err(DesalignError::config("sampled.block_entities", "must be ≥ 1 when sampled training is enabled"));
        }
        Ok(())
    }
}

impl ToJson for StructureEncoderKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                StructureEncoderKind::Gat => "Gat",
                StructureEncoderKind::Gcn => "Gcn",
            }
            .to_string(),
        )
    }
}

impl ToJson for RetrievalSettings {
    fn to_json(&self) -> Json {
        json!({
            "backend": match self.backend {
                RetrievalBackend::Dense => "Dense",
                RetrievalBackend::Exact => "Exact",
                RetrievalBackend::Ivf => "Ivf",
            },
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "kmeans_iters": self.kmeans_iters,
            "csls_k": self.csls_k,
        })
    }
}

impl ToJson for SampledTrainingSettings {
    fn to_json(&self) -> Json {
        json!({
            "enabled": self.enabled,
            "block_entities": self.block_entities,
            "halo_per_node": self.halo_per_node,
        })
    }
}

impl ToJson for WatchdogConfig {
    fn to_json(&self) -> Json {
        json!({
            "enabled": self.enabled,
            "spike_factor": self.spike_factor,
            "snapshot_every": self.snapshot_every,
            "max_rollbacks": self.max_rollbacks as usize,
        })
    }
}

impl ToJson for Ablation {
    fn to_json(&self) -> Json {
        json!({
            "use_structure": self.use_structure,
            "use_relation": self.use_relation,
            "use_text": self.use_text,
            "use_visual": self.use_visual,
            "use_loss_task0": self.use_loss_task0,
            "use_loss_taskk": self.use_loss_taskk,
            "use_loss_mk1": self.use_loss_mk1,
            "use_loss_mk": self.use_loss_mk,
            "use_semantic_propagation": self.use_semantic_propagation,
            "use_energy_constraint": self.use_energy_constraint,
            "use_confidence_weighting": self.use_confidence_weighting,
            "use_confidence_fusion": self.use_confidence_fusion,
        })
    }
}

impl ToJson for DesalignConfig {
    /// Serializes the configuration for provenance next to result dumps
    /// (write-only — configs are constructed in code, not loaded).
    fn to_json(&self) -> Json {
        json!({
            "hidden_dim": self.hidden_dim,
            "feature_dims": json!({
                "relation": self.feature_dims.relation,
                "attribute": self.feature_dims.attribute,
                "visual": self.feature_dims.visual,
            }),
            "structure_encoder": self.structure_encoder,
            "gat_heads": self.gat_heads,
            "gat_layers": self.gat_layers,
            "caw_heads": self.caw_heads,
            "caw_layers": self.caw_layers,
            "tau": self.tau,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "weight_decay": self.weight_decay,
            "warmup_frac": self.warmup_frac,
            "early_stop_patience": self.early_stop_patience,
            "eval_every": self.eval_every,
            "c_min": self.c_min,
            "c_max": self.c_max,
            "energy_weight": self.energy_weight,
            "sp_iterations": self.sp_iterations,
            "sp_reset_known": self.sp_reset_known,
            "sp_per_modality": self.sp_per_modality,
            "fusion_normalize": self.fusion_normalize,
            "modal_k1_on_branch": self.modal_k1_on_branch,
            "phi_rescale": self.phi_rescale,
            "mask_missing_modalities": self.mask_missing_modalities,
            "confidence_blend": self.confidence_blend,
            "watchdog": self.watchdog,
            "retrieval": self.retrieval,
            "sampled": self.sampled,
            "ablation": self.ablation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(DesalignConfig::paper().validate(), Ok(()));
        assert_eq!(DesalignConfig::fast().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut c = DesalignConfig::fast();
        c.c_min = 1.5;
        assert!(c.validate().is_err());
        let mut c = DesalignConfig::fast();
        c.tau = 0.0;
        assert!(c.validate().is_err());
        let mut c = DesalignConfig::fast();
        c.hidden_dim = 63;
        c.caw_heads = 2;
        assert!(c.validate().is_err());
        let mut c = DesalignConfig::fast();
        c.ablation.use_structure = false;
        c.ablation.use_relation = false;
        c.ablation.use_text = false;
        c.ablation.use_visual = false;
        assert!(c.validate().is_err());
    }

    #[test]
    fn watchdog_validation() {
        let mut c = DesalignConfig::fast();
        c.watchdog.spike_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = DesalignConfig::fast();
        c.watchdog.snapshot_every = 0;
        assert!(c.validate().is_err());
        // A disabled watchdog skips threshold checks entirely.
        c.watchdog.enabled = false;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn retrieval_validation_rejects_degenerate_knobs() {
        // Hostile input: a zero CSLS neighbourhood used to be silently
        // clamped; it must now fail validation with a Config defect.
        let mut c = DesalignConfig::fast();
        c.retrieval.csls_k = 0;
        let err = c.validate().unwrap_err();
        assert_eq!(err.class, desalign_util::DefectClass::Config);
        assert_eq!(err.location, "retrieval.csls_k");
        let mut c = DesalignConfig::fast();
        c.retrieval.nprobe = 0;
        assert_eq!(c.validate().unwrap_err().location, "retrieval.nprobe");
    }

    #[test]
    fn config_serializes_for_provenance() {
        let v = DesalignConfig::fast().to_json();
        let text = v.to_string();
        let back = Json::parse(&text).expect("config JSON parses back");
        assert_eq!(back.get("hidden_dim").unwrap().as_usize(), Some(64));
        assert_eq!(back.get("structure_encoder").unwrap().as_str(), Some("Gat"));
        assert_eq!(back.get("ablation").unwrap().get("use_visual").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("feature_dims").unwrap().get("visual").unwrap().as_usize(), Some(64));
    }

    #[test]
    fn ablation_counts_modalities() {
        let mut a = Ablation::default();
        assert_eq!(a.num_modalities(), 4);
        a.use_visual = false;
        assert_eq!(a.num_modalities(), 3);
    }
}
