//! The `DesalignModel` facade: construct, `fit`, `similarity`, `evaluate`.
//!
//! The training loop itself (with its checkpoint/resume split and the
//! divergence watchdog) lives in the sibling [`crate::trainer`] module;
//! full-state persistence lives in [`crate::checkpoint`].

use crate::config::{DesalignConfig, RetrievalBackend};
use crate::encoder::{GraphInputs, MultiModalEncoder};
use crate::energy::{EnergyDiagnostics, EnergyTrace};
use crate::propagate::{
    consistency_mask, per_modality_propagation_similarity, per_modality_propagation_states,
    semantic_propagation_similarity, semantic_propagation_states,
};
use crate::trainer::ChaosPlan;
use desalign_eval::{evaluate_ranking, AlignmentMetrics, SimilarityMatrix};
use desalign_graph::{singular_value_range, Csr};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{ParamStore, Session};
use desalign_tensor::{rng_from_seed, Matrix, Rng64};
use std::rc::Rc;

/// A trained (or trainable) DESAlign model bound to one dataset's shape.
pub struct DesalignModel {
    pub(crate) cfg: DesalignConfig,
    pub(crate) store: ParamStore,
    pub(crate) encoder: MultiModalEncoder,
    pub(crate) inputs: [GraphInputs; 2],
    pub(crate) laplacians: [Rc<Csr>; 2],
    pub(crate) adj_norm: [Rc<Csr>; 2],
    pub(crate) known: [Vec<bool>; 2],
    pub(crate) rng: Rng64,
    /// The construction seed, recorded for checkpoint provenance.
    pub(crate) seed: u64,
    /// Digest of the dataset this model was built against (checkpoint
    /// provenance — see `crate::checkpoint`).
    pub(crate) dataset_digest: u64,
    /// Deterministic fault-injection plan, if armed (tests only).
    pub(crate) chaos: Option<ChaosPlan>,
    /// Extra (pseudo) seed pairs injected by the iterative strategy.
    pub pseudo_pairs: Vec<(usize, usize)>,
    pub(crate) energy_traces: Vec<EnergyTrace>,
    /// Gradient-buffer pool shared by every per-step tape of this model.
    /// After a one-step warmup, training epochs allocate no new gradient
    /// buffers (see `desalign_nn::Workspace`).
    pub(crate) ws: desalign_nn::SharedWorkspace,
}

impl DesalignModel {
    /// Builds a model for `dataset`, initializing all parameters from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this dataset. Use
    /// [`DesalignModel::try_new`] for a typed error instead.
    pub fn new(cfg: DesalignConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::try_new(cfg, dataset, seed).unwrap_or_else(|e| panic!("invalid DESAlign setup: {e}"))
    }

    /// Fallible counterpart of [`DesalignModel::new`]: reports an invalid
    /// configuration or a structurally broken dataset as a typed
    /// [`desalign_util::DesalignError`] instead of panicking. Run the
    /// dataset through [`desalign_mmkg::DatasetAuditor`] first when the
    /// data comes from outside the process.
    pub fn try_new(
        cfg: DesalignConfig,
        dataset: &AlignmentDataset,
        seed: u64,
    ) -> Result<Self, desalign_util::DesalignError> {
        cfg.validate()?;
        dataset.validate().map_err(|e| {
            let class = e.class;
            e.wrap(class, dataset.name.clone(), "dataset failed validation during model setup")
        })?;
        // Cross-check config against dataset scale: a CSLS neighbourhood
        // as large as the candidate pool would be silently clamped by the
        // rescaler and degenerate to a global mean.
        let pool = dataset.source.num_entities.min(dataset.target.num_entities);
        if cfg.retrieval.csls_k >= pool {
            return Err(desalign_util::DesalignError::config(
                "retrieval.csls_k",
                format!(
                    "CSLS neighbourhood k = {} must be smaller than the {}-entity candidate pool of {}",
                    cfg.retrieval.csls_k, pool, dataset.name
                ),
            ));
        }
        Ok(Self::new_unchecked(cfg, dataset, seed))
    }

    /// The construction body shared by `new`/`try_new`; assumes `cfg` and
    /// `dataset` were already validated.
    fn new_unchecked(cfg: DesalignConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let encoder = MultiModalEncoder::new(&mut store, &mut rng, &cfg, dataset);
        let in_s = GraphInputs::prepare(&dataset.source, &cfg, &mut rng);
        let in_t = GraphInputs::prepare(&dataset.target, &cfg, &mut rng);
        let g_s = dataset.source.graph();
        let g_t = dataset.target.graph();
        let laplacians = [Rc::new(g_s.laplacian()), Rc::new(g_t.laplacian())];
        let adj_norm = [Rc::new(g_s.normalized_adjacency(true)), Rc::new(g_t.normalized_adjacency(true))];
        let known = [consistency_mask(&in_s.features), consistency_mask(&in_t.features)];
        Self {
            cfg,
            store,
            encoder,
            inputs: [in_s, in_t],
            laplacians,
            adj_norm,
            known,
            rng,
            seed,
            dataset_digest: crate::checkpoint::dataset_digest(dataset),
            chaos: None,
            pseudo_pairs: Vec::new(),
            energy_traces: Vec::new(),
            ws: desalign_nn::shared_workspace(),
        }
    }

    /// Allocation counters of the shared gradient workspace — `fresh` goes
    /// flat once training reaches its steady state (asserted in tests and
    /// the CI tape-allocation check).
    pub fn workspace_stats(&self) -> desalign_nn::WorkspaceStats {
        self.ws.borrow().stats()
    }

    /// The active configuration.
    pub fn config(&self) -> &DesalignConfig {
        &self.cfg
    }

    /// The seed this model was constructed with (checkpoints are
    /// digest-checked against it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Final entity semantic embeddings `(X_s, X_t)` — the early-fusion
    /// `h^Ori` the paper selects for evaluation (§IV-A).
    pub fn embeddings(&self) -> (Matrix, Matrix) {
        let mut sess = Session::new(&self.store);
        let enc_s = self.encoder.forward(&mut sess, &self.inputs[0], 0);
        let enc_t = self.encoder.forward(&mut sess, &self.inputs[1], 1);
        (sess.tape.value(enc_s.h_ori).clone(), sess.tape.value(enc_t.h_ori).clone())
    }

    /// The pairwise-similarity matrix `Ω`, with Semantic Propagation
    /// averaging when enabled (Algorithm 1 lines 11–15).
    pub fn similarity(&self) -> SimilarityMatrix {
        let iterations = if self.cfg.ablation.use_semantic_propagation { self.cfg.sp_iterations } else { 0 };
        self.similarity_with_iterations(iterations)
    }

    /// Similarity with an explicit `n_p` (for the Figure 4 sweep).
    pub fn similarity_with_iterations(&self, iterations: usize) -> SimilarityMatrix {
        let (x_s, x_t) = self.embeddings();
        if self.cfg.sp_per_modality {
            let blocks = vec![self.encoder.hidden_dim(); self.encoder.modalities().len()];
            per_modality_propagation_similarity(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &self.modality_masks(0),
                &self.modality_masks(1),
                &blocks,
                iterations,
            )
        } else {
            semantic_propagation_similarity(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &self.known[0],
                &self.known[1],
                iterations,
                self.cfg.sp_reset_known,
            )
        }
    }

    /// Evaluates H@k / MRR on the dataset's test pairs through the
    /// configured retrieval backend ([`RetrievalBackend::Dense`] by
    /// default, which reproduces the historical dense path bit-for-bit).
    pub fn evaluate(&self, dataset: &AlignmentDataset) -> AlignmentMetrics {
        self.evaluate_pairs(&dataset.test_pairs)
    }

    /// Backend-dispatched evaluation over arbitrary gold pairs (the
    /// trainer uses this for the validation split). Non-dense backends
    /// search the SP-flattened [`Self::retrieval_embeddings`]; if the
    /// retrieval build fails (e.g. non-finite embeddings mid-divergence),
    /// the dense path is used as a fallback and
    /// `retrieval.fallback_dense` is counted.
    pub fn evaluate_pairs(&self, pairs: &[(usize, usize)]) -> AlignmentMetrics {
        if self.cfg.retrieval.backend == RetrievalBackend::Dense {
            return evaluate_ranking(&self.similarity(), pairs);
        }
        let (z_s, z_t) = self.retrieval_embeddings();
        match desalign_eval::evaluate_ranking_embeddings(&z_s, &z_t, pairs, &self.cfg.retrieval.eval_config(self.seed)) {
            Ok(m) => m,
            Err(_) => {
                if desalign_telemetry::enabled() {
                    desalign_telemetry::counter("retrieval.fallback_dense").incr();
                }
                evaluate_ranking(&self.similarity(), pairs)
            }
        }
    }

    /// Mines mutual-nearest-neighbour pseudo pairs among the candidate
    /// entities through the configured backend. Dense reproduces the
    /// historical `mutual_nearest_neighbours` over the SP-averaged matrix;
    /// Exact/Ivf search the SP-flattened embeddings without materializing
    /// it (dense fallback on retrieval errors, as in
    /// [`Self::evaluate_pairs`]).
    pub fn mine_pseudo_pairs(
        &self,
        source_candidates: &[usize],
        target_candidates: &[usize],
        min_score: f32,
    ) -> Vec<(usize, usize, f32)> {
        if self.cfg.retrieval.backend != RetrievalBackend::Dense {
            let (z_s, z_t) = self.retrieval_embeddings();
            match desalign_eval::mine_mutual_nn(
                &z_s,
                &z_t,
                source_candidates,
                target_candidates,
                min_score,
                &self.cfg.retrieval.eval_config(self.seed),
            ) {
                Ok(pairs) => return pairs,
                Err(_) => {
                    if desalign_telemetry::enabled() {
                        desalign_telemetry::counter("retrieval.fallback_dense").incr();
                    }
                }
            }
        }
        desalign_eval::mutual_nearest_neighbours(&self.similarity(), source_candidates, target_candidates, min_score)
    }

    /// CSLS-rescored top-`topk` alignment candidates per source entity,
    /// searched through the configured backend with the configured
    /// `retrieval.csls_k` neighbourhood (Dense maps to the exact scan).
    ///
    /// # Errors
    /// Propagates `csls_retrieve_top_k`'s typed errors (degenerate `k`,
    /// non-finite embeddings).
    pub fn csls_candidates(&self, topk: usize) -> Result<Vec<Vec<(usize, f32)>>, desalign_util::DesalignError> {
        let (z_s, z_t) = self.retrieval_embeddings();
        desalign_eval::csls_retrieve_top_k(
            &z_s,
            &z_t,
            self.cfg.retrieval.csls_k,
            topk,
            &self.cfg.retrieval.eval_config(self.seed),
        )
    }

    /// SP-flattened retrieval embeddings `(Z_s, Z_t)`: every Semantic
    /// Propagation round's state, ℓ2-normalized per round and concatenated
    /// along the feature axis. After the retriever's own row
    /// normalization, the inner product of two flattened rows equals the
    /// *mean* of the per-round cosines — the same quantity the dense
    /// SP-averaged [`Self::similarity`] matrix holds (exactly when all
    /// rounds are non-degenerate, up to float associativity) — so
    /// index-based search ranks by the paper's decision rule without ever
    /// forming the `n_s × n_t` matrix.
    pub fn retrieval_embeddings(&self) -> (Matrix, Matrix) {
        let iterations = if self.cfg.ablation.use_semantic_propagation { self.cfg.sp_iterations } else { 0 };
        let (states_s, states_t) = self.sp_states(iterations);
        let flatten = |states: &[Matrix]| -> Matrix {
            let normed: Vec<Matrix> = states.iter().map(|m| m.l2_normalize_rows(1e-9)).collect();
            let refs: Vec<&Matrix> = normed.iter().collect();
            Matrix::hcat_all(&refs)
        };
        (flatten(&states_s), flatten(&states_t))
    }

    /// The per-round SP states both similarity and retrieval embeddings
    /// derive from.
    fn sp_states(&self, iterations: usize) -> (Vec<Matrix>, Vec<Matrix>) {
        let (x_s, x_t) = self.embeddings();
        if self.cfg.sp_per_modality {
            let blocks = vec![self.encoder.hidden_dim(); self.encoder.modalities().len()];
            per_modality_propagation_states(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &self.modality_masks(0),
                &self.modality_masks(1),
                &blocks,
                iterations,
            )
        } else {
            semantic_propagation_states(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &self.known[0],
                &self.known[1],
                iterations,
                self.cfg.sp_reset_known,
            )
        }
    }

    /// Per-modality presence masks in encoder concatenation order.
    fn modality_masks(&self, side: usize) -> Vec<Vec<bool>> {
        let f = &self.inputs[side].features;
        self.encoder
            .modalities()
            .iter()
            .map(|m| match m {
                crate::encoder::Modality::Structure => vec![true; f.num_entities()],
                crate::encoder::Modality::Relation => f.has_relation.clone(),
                crate::encoder::Modality::Text => f.has_attribute.clone(),
                crate::encoder::Modality::Visual => f.has_visual.clone(),
            })
            .collect()
    }

    /// Energy diagnostics accumulated during training, plus the current
    /// Proposition 2 singular-value ranges of the per-modality FC weights.
    pub fn energy_diagnostics(&self) -> EnergyDiagnostics {
        let fc_singular_values = self
            .encoder
            .fc_weights()
            .into_iter()
            .map(|(m, id)| (m.letter(), singular_value_range(self.store.value(id), 400, 1e-6)))
            .collect();
        EnergyDiagnostics { traces: self.energy_traces.clone(), fc_singular_values }
    }

    /// Read access to the underlying parameter store (for tests and
    /// diagnostics).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Saves all trained weights to a JSON checkpoint.
    pub fn save_weights(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.store.save_json(path)
    }

    /// Loads weights saved with [`DesalignModel::save_weights`] into this
    /// model. The model must have been built with the same configuration
    /// and dataset shape.
    pub fn load_weights(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.store.load_json(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    fn tiny_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 8;
        cfg.batch_size = 64;
        cfg
    }

    #[test]
    fn fit_decreases_loss_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(1);
        let mut model = DesalignModel::new(tiny_cfg(), &ds, 7);
        let report = model.fit(&ds);
        assert_eq!(report.epochs_run, 8);
        assert!(report.loss_decreased(), "loss history: {:?}", report.loss_history.iter().map(|b| b.total).collect::<Vec<_>>());
        let metrics = model.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert!(metrics.hits_at_1 >= 0.0 && metrics.hits_at_1 <= 1.0);
    }

    #[test]
    fn trained_model_beats_untrained() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(100).generate(2);
        let mut cfg = tiny_cfg();
        cfg.epochs = 30;
        let mut trained = DesalignModel::new(cfg.clone(), &ds, 3);
        let untrained = DesalignModel::new(cfg, &ds, 3);
        trained.fit(&ds);
        let m_trained = trained.evaluate(&ds);
        let m_untrained = untrained.evaluate(&ds);
        assert!(
            m_trained.mrr > m_untrained.mrr,
            "training should help: {} vs {}",
            m_trained.mrr,
            m_untrained.mrr
        );
    }

    #[test]
    fn determinism_given_seed() {
        let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(60).generate(4);
        let run = || {
            let mut model = DesalignModel::new(tiny_cfg(), &ds, 11);
            model.fit(&ds);
            model.evaluate(&ds)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sp_iterations_zero_matches_disabled_sp() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(5);
        let mut cfg = tiny_cfg();
        cfg.epochs = 3;
        let mut model = DesalignModel::new(cfg, &ds, 13);
        model.fit(&ds);
        let explicit = model.similarity_with_iterations(0);
        let mut cfg2 = model.config().clone();
        cfg2.ablation.use_semantic_propagation = false;
        // Rebuild similarity with SP ablated via config path.
        let via_cfg = {
            let mut m2 = DesalignModel::new(cfg2, &ds, 13);
            m2.store.restore(&model.store.snapshot());
            m2.similarity()
        };
        assert_eq!(explicit.scores(), via_cfg.scores());
    }

    #[test]
    fn checkpoint_round_trip_restores_metrics() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(7);
        let mut cfg = tiny_cfg();
        cfg.epochs = 6;
        let mut model = DesalignModel::new(cfg.clone(), &ds, 23);
        model.fit(&ds);
        let trained = model.evaluate(&ds);
        let path = std::env::temp_dir().join("desalign-model-ckpt.json");
        model.save_weights(&path).expect("save");
        let mut fresh = DesalignModel::new(cfg, &ds, 23);
        fresh.load_weights(&path).expect("load");
        assert_eq!(fresh.evaluate(&ds), trained);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn energy_traces_are_recorded() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(6);
        let mut cfg = tiny_cfg();
        cfg.eval_every = 2;
        let mut model = DesalignModel::new(cfg, &ds, 17);
        let report = model.fit(&ds);
        assert!(!report.energy_history.is_empty());
        let diag = model.energy_diagnostics();
        assert_eq!(diag.fc_singular_values.len(), 3);
        for &(_, (smin, smax)) in &diag.fc_singular_values {
            assert!(smax >= smin && smin >= 0.0);
        }
    }
}
