//! The `DesalignModel` facade: construct, `fit`, `similarity`, `evaluate`.

use crate::config::DesalignConfig;
use crate::encoder::{GraphInputs, MultiModalEncoder};
use crate::energy::{EnergyDiagnostics, EnergyTrace};
use crate::loss::mmsl_loss;
use crate::propagate::{consistency_mask, per_modality_propagation_similarity, semantic_propagation_similarity};
use crate::train::{sample_batch, train_val_split, TrainReport};
use desalign_eval::{evaluate_ranking, AlignmentMetrics, SimilarityMatrix};
use desalign_graph::{dirichlet_energy, singular_value_range, Csr};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, ParamStore, Session};
use desalign_tensor::{rng_from_seed, Matrix, Rng64};
use std::rc::Rc;
use std::time::Instant;

/// A trained (or trainable) DESAlign model bound to one dataset's shape.
pub struct DesalignModel {
    cfg: DesalignConfig,
    store: ParamStore,
    encoder: MultiModalEncoder,
    inputs: [GraphInputs; 2],
    laplacians: [Rc<Csr>; 2],
    adj_norm: [Rc<Csr>; 2],
    known: [Vec<bool>; 2],
    rng: Rng64,
    /// Extra (pseudo) seed pairs injected by the iterative strategy.
    pub pseudo_pairs: Vec<(usize, usize)>,
    energy_traces: Vec<EnergyTrace>,
}

impl DesalignModel {
    /// Builds a model for `dataset`, initializing all parameters from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this dataset.
    pub fn new(cfg: DesalignConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid DesalignConfig: {e}"));
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let encoder = MultiModalEncoder::new(&mut store, &mut rng, &cfg, dataset);
        let in_s = GraphInputs::prepare(&dataset.source, &cfg, &mut rng);
        let in_t = GraphInputs::prepare(&dataset.target, &cfg, &mut rng);
        let g_s = dataset.source.graph();
        let g_t = dataset.target.graph();
        let laplacians = [Rc::new(g_s.laplacian()), Rc::new(g_t.laplacian())];
        let adj_norm = [Rc::new(g_s.normalized_adjacency(true)), Rc::new(g_t.normalized_adjacency(true))];
        let known = [consistency_mask(&in_s.features), consistency_mask(&in_t.features)];
        Self {
            cfg,
            store,
            encoder,
            inputs: [in_s, in_t],
            laplacians,
            adj_norm,
            known,
            rng,
            pseudo_pairs: Vec::new(),
            energy_traces: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DesalignConfig {
        &self.cfg
    }

    /// Trains with the MMSL objective (Algorithm 1 lines 3–10). Calling
    /// `fit` again continues training (used by the iterative strategy).
    pub fn fit(&mut self, dataset: &AlignmentDataset) -> TrainReport {
        let _fit_span = desalign_telemetry::span("fit");
        let t0 = Instant::now();
        let mut report = TrainReport::default();
        let val_frac = if self.cfg.early_stop_patience > 0 { 0.1 } else { 0.0 };
        let (train_pairs, val_pairs) = train_val_split(&dataset.train_pairs, val_frac, &mut self.rng);
        let mut pool = train_pairs;
        pool.extend(self.pseudo_pairs.iter().copied());
        if pool.is_empty() {
            report.seconds = t0.elapsed().as_secs_f64();
            return report;
        }

        let schedule = CosineWarmup::new(self.cfg.lr, self.cfg.epochs, self.cfg.warmup_frac);
        let mut opt = AdamW::new(self.cfg.weight_decay);
        let mut best_val = 0.0f32;
        let mut best_snapshot: Option<Vec<Matrix>> = None;
        let mut patience_left = self.cfg.early_stop_patience;

        for epoch in 0..self.cfg.epochs {
            let _epoch_span = desalign_telemetry::span("epoch");
            let batch = {
                let _span = desalign_telemetry::span("sample");
                sample_batch(&pool, self.cfg.batch_size, &mut self.rng)
            };
            let mut sess = Session::new(&self.store);
            let (enc_s, enc_t, loss, breakdown) = {
                let _span = desalign_telemetry::span("forward");
                let enc_s = self.encoder.forward(&mut sess, &self.inputs[0], 0);
                let enc_t = self.encoder.forward(&mut sess, &self.inputs[1], 1);
                let (loss, breakdown) =
                    mmsl_loss(&mut sess, &self.cfg, &enc_s, &enc_t, &batch, (&self.laplacians[0], &self.laplacians[1]));
                (enc_s, enc_t, loss, breakdown)
            };

            // Energy trace sampling (Section III instrumentation).
            let mut epoch_energy: Option<f64> = None;
            if self.cfg.eval_every > 0 && epoch % self.cfg.eval_every == 0 {
                let _span = desalign_telemetry::span("energy");
                let trace = EnergyTrace {
                    epoch,
                    source: [
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_ori)),
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_fus_prev())),
                        dirichlet_energy(&self.laplacians[0], sess.tape.value(enc_s.h_fus())),
                    ],
                    target: [
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_ori)),
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_fus_prev())),
                        dirichlet_energy(&self.laplacians[1], sess.tape.value(enc_t.h_fus())),
                    ],
                };
                // Fused (post-SA) energies of both graphs — the quantity
                // Figure 3 tracks.
                epoch_energy = Some((trace.source[2] + trace.target[2]) as f64);
                self.energy_traces.push(trace);
                report.energy_history.push(trace);
            }

            let mut grads = {
                let _span = desalign_telemetry::span("backward");
                sess.backward(loss)
            };
            // Read-only diagnostic; skipped entirely when telemetry is off
            // so the disabled path does no extra float work.
            let grad_norm =
                if desalign_telemetry::enabled() { Some(grads.global_norm()) } else { None };
            {
                let _span = desalign_telemetry::span("optimizer");
                opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
            }
            report.loss_history.push(breakdown);
            report.epochs_run = epoch + 1;

            // Early stopping on the held-out seed split.
            let mut epoch_eval = None;
            let mut stop = false;
            if !val_pairs.is_empty() && self.cfg.eval_every > 0 && (epoch + 1) % self.cfg.eval_every == 0 {
                let _span = desalign_telemetry::span("eval");
                let metrics = evaluate_ranking(&self.similarity(), &val_pairs);
                epoch_eval = Some(desalign_telemetry::EvalSnapshot {
                    hits_at_1: metrics.hits_at_1,
                    hits_at_10: metrics.hits_at_10,
                    mrr: metrics.mrr,
                });
                if metrics.hits_at_1 > best_val {
                    best_val = metrics.hits_at_1;
                    best_snapshot = Some(self.store.snapshot());
                    patience_left = self.cfg.early_stop_patience;
                } else if self.cfg.early_stop_patience > 0 {
                    patience_left -= 1;
                    if patience_left == 0 {
                        stop = true;
                    }
                }
            }

            if desalign_telemetry::enabled() {
                let record = desalign_telemetry::EpochRecord {
                    epoch,
                    loss_total: breakdown.total,
                    loss_task0: breakdown.task0,
                    loss_taskk: breakdown.taskk,
                    loss_modal_k1: breakdown.modal_k1,
                    loss_modal_k: breakdown.modal_k,
                    energy_penalty: breakdown.energy_penalty,
                    dirichlet_energy: epoch_energy,
                    lr: schedule.lr(epoch),
                    grad_norm,
                    sp_iterations: if self.cfg.ablation.use_semantic_propagation {
                        self.cfg.sp_iterations
                    } else {
                        0
                    },
                    eval: epoch_eval,
                };
                desalign_telemetry::emit(&record.to_json());
            }
            if stop {
                break;
            }
        }
        if let Some(snap) = best_snapshot {
            self.store.restore(&snap);
        }
        report.best_val_h1 = best_val;
        report.final_loss = report.loss_history.last().copied().unwrap_or_default();
        report.seconds = t0.elapsed().as_secs_f64();
        report
    }

    /// Final entity semantic embeddings `(X_s, X_t)` — the early-fusion
    /// `h^Ori` the paper selects for evaluation (§IV-A).
    pub fn embeddings(&self) -> (Matrix, Matrix) {
        let mut sess = Session::new(&self.store);
        let enc_s = self.encoder.forward(&mut sess, &self.inputs[0], 0);
        let enc_t = self.encoder.forward(&mut sess, &self.inputs[1], 1);
        (sess.tape.value(enc_s.h_ori).clone(), sess.tape.value(enc_t.h_ori).clone())
    }

    /// The pairwise-similarity matrix `Ω`, with Semantic Propagation
    /// averaging when enabled (Algorithm 1 lines 11–15).
    pub fn similarity(&self) -> SimilarityMatrix {
        let iterations = if self.cfg.ablation.use_semantic_propagation { self.cfg.sp_iterations } else { 0 };
        self.similarity_with_iterations(iterations)
    }

    /// Similarity with an explicit `n_p` (for the Figure 4 sweep).
    pub fn similarity_with_iterations(&self, iterations: usize) -> SimilarityMatrix {
        let (x_s, x_t) = self.embeddings();
        if self.cfg.sp_per_modality {
            let masks = |side: usize| -> Vec<Vec<bool>> {
                let f = &self.inputs[side].features;
                self.encoder
                    .modalities()
                    .iter()
                    .map(|m| match m {
                        crate::encoder::Modality::Structure => vec![true; f.num_entities()],
                        crate::encoder::Modality::Relation => f.has_relation.clone(),
                        crate::encoder::Modality::Text => f.has_attribute.clone(),
                        crate::encoder::Modality::Visual => f.has_visual.clone(),
                    })
                    .collect()
            };
            let blocks = vec![self.encoder.hidden_dim(); self.encoder.modalities().len()];
            per_modality_propagation_similarity(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &masks(0),
                &masks(1),
                &blocks,
                iterations,
            )
        } else {
            semantic_propagation_similarity(
                &x_s,
                &x_t,
                &self.adj_norm[0],
                &self.adj_norm[1],
                &self.known[0],
                &self.known[1],
                iterations,
                self.cfg.sp_reset_known,
            )
        }
    }

    /// Evaluates H@k / MRR on the dataset's test pairs.
    pub fn evaluate(&self, dataset: &AlignmentDataset) -> AlignmentMetrics {
        evaluate_ranking(&self.similarity(), &dataset.test_pairs)
    }

    /// Energy diagnostics accumulated during training, plus the current
    /// Proposition 2 singular-value ranges of the per-modality FC weights.
    pub fn energy_diagnostics(&self) -> EnergyDiagnostics {
        let fc_singular_values = self
            .encoder
            .fc_weights()
            .into_iter()
            .map(|(m, id)| (m.letter(), singular_value_range(self.store.value(id), 400, 1e-6)))
            .collect();
        EnergyDiagnostics { traces: self.energy_traces.clone(), fc_singular_values }
    }

    /// Read access to the underlying parameter store (for tests and
    /// diagnostics).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Saves all trained weights to a JSON checkpoint.
    pub fn save_weights(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.store.save_json(path)
    }

    /// Loads weights saved with [`DesalignModel::save_weights`] into this
    /// model. The model must have been built with the same configuration
    /// and dataset shape.
    pub fn load_weights(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.store.load_json(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    fn tiny_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 8;
        cfg.batch_size = 64;
        cfg
    }

    #[test]
    fn fit_decreases_loss_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(1);
        let mut model = DesalignModel::new(tiny_cfg(), &ds, 7);
        let report = model.fit(&ds);
        assert_eq!(report.epochs_run, 8);
        assert!(report.loss_decreased(), "loss history: {:?}", report.loss_history.iter().map(|b| b.total).collect::<Vec<_>>());
        let metrics = model.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert!(metrics.hits_at_1 >= 0.0 && metrics.hits_at_1 <= 1.0);
    }

    #[test]
    fn trained_model_beats_untrained() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(100).generate(2);
        let mut cfg = tiny_cfg();
        cfg.epochs = 30;
        let mut trained = DesalignModel::new(cfg.clone(), &ds, 3);
        let untrained = DesalignModel::new(cfg, &ds, 3);
        trained.fit(&ds);
        let m_trained = trained.evaluate(&ds);
        let m_untrained = untrained.evaluate(&ds);
        assert!(
            m_trained.mrr > m_untrained.mrr,
            "training should help: {} vs {}",
            m_trained.mrr,
            m_untrained.mrr
        );
    }

    #[test]
    fn determinism_given_seed() {
        let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(60).generate(4);
        let run = || {
            let mut model = DesalignModel::new(tiny_cfg(), &ds, 11);
            model.fit(&ds);
            model.evaluate(&ds)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sp_iterations_zero_matches_disabled_sp() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(5);
        let mut cfg = tiny_cfg();
        cfg.epochs = 3;
        let mut model = DesalignModel::new(cfg, &ds, 13);
        model.fit(&ds);
        let explicit = model.similarity_with_iterations(0);
        let mut cfg2 = model.config().clone();
        cfg2.ablation.use_semantic_propagation = false;
        // Rebuild similarity with SP ablated via config path.
        let via_cfg = {
            let mut m2 = DesalignModel::new(cfg2, &ds, 13);
            m2.store.restore(&model.store.snapshot());
            m2.similarity()
        };
        assert_eq!(explicit.scores(), via_cfg.scores());
    }

    #[test]
    fn checkpoint_round_trip_restores_metrics() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(7);
        let mut cfg = tiny_cfg();
        cfg.epochs = 6;
        let mut model = DesalignModel::new(cfg.clone(), &ds, 23);
        model.fit(&ds);
        let trained = model.evaluate(&ds);
        let path = std::env::temp_dir().join("desalign-model-ckpt.json");
        model.save_weights(&path).expect("save");
        let mut fresh = DesalignModel::new(cfg, &ds, 23);
        fresh.load_weights(&path).expect("load");
        assert_eq!(fresh.evaluate(&ds), trained);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn energy_traces_are_recorded() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(6);
        let mut cfg = tiny_cfg();
        cfg.eval_every = 2;
        let mut model = DesalignModel::new(cfg, &ds, 17);
        let report = model.fit(&ds);
        assert!(!report.energy_history.is_empty());
        let diag = model.energy_diagnostics();
        assert_eq!(diag.fc_singular_values.len(), 3);
        for &(_, (smin, smax)) in &diag.fc_singular_values {
            assert!(smax >= smin && smin >= 0.0);
        }
    }
}
