//! Steady-state allocation contract of the shared gradient workspace:
//! after a short warmup, further training epochs allocate **zero** new
//! gradient buffers — every backward-pass matrix is served from the pool
//! the previous step returned its buffers to. This is the live check behind
//! the `tape.ws_fresh` telemetry counter and the CI tape-allocation gate.

use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{DatasetSpec, SynthConfig};

#[test]
fn steady_state_epochs_allocate_no_new_gradient_buffers() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(7);
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 16;
    cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
    cfg.epochs = 6;
    cfg.batch_size = 64;
    // Interleave an energy-instrumented (eval) epoch so the steady-state
    // claim covers both epoch flavours.
    cfg.eval_every = 2;
    let mut model = DesalignModel::new(cfg, &ds, 3);

    let mut state = model.begin_training(&ds);
    model.train_epochs(&mut state, 2);
    let warm = model.workspace_stats();
    assert!(warm.fresh > 0, "warmup epochs should have populated the pool");

    model.train_epochs(&mut state, 4);
    let steady = model.workspace_stats();
    assert_eq!(
        steady.fresh, warm.fresh,
        "steady-state epochs allocated {} new gradient buffers",
        steady.fresh - warm.fresh
    );
    assert!(steady.reused > warm.reused, "steady-state epochs should reuse pooled buffers");
    model.end_training(state);
}
