//! Regression pins for the retrieval refactor.
//!
//! The H@k / MRR bit patterns below were captured on the seed synthetic
//! dataset **before** `evaluate_ranking` was rewired through the
//! `Retriever` trait. They pin, to the bit, that the refactor is
//! behaviour-preserving on the default (dense) backend, that the exact
//! blocked backend reproduces the same bits, and that the model-level
//! CSLS-k validation rejects the silently-clamping configurations.

use desalign_core::{DesalignConfig, DesalignModel, RetrievalBackend};
use desalign_mmkg::{DatasetSpec, FeatureDims, SynthConfig};
use desalign_util::DefectClass;

fn tiny_cfg() -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 16;
    cfg.feature_dims = FeatureDims { relation: 32, attribute: 32, visual: 64 };
    cfg.epochs = 8;
    cfg.batch_size = 64;
    cfg
}

fn seed_dataset() -> desalign_mmkg::AlignmentDataset {
    SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(1)
}

/// (H@1, H@10, MRR) f32 bit patterns of the untrained model at seed 7.
const UNTRAINED_BITS: (u32, u32, u32) = (1040498081, 1061003567, 1050537162);
/// Same model after `fit` (8 epochs).
const TRAINED_BITS: (u32, u32, u32) = (1041740838, 1061935635, 1052147726);
const NUM_QUERIES: usize = 54;

fn metric_bits(m: &desalign_eval::AlignmentMetrics) -> (u32, u32, u32) {
    (m.hits_at_1.to_bits(), m.hits_at_10.to_bits(), m.mrr.to_bits())
}

#[test]
fn dense_backend_reproduces_pre_refactor_bits() {
    let ds = seed_dataset();
    let mut model = DesalignModel::new(tiny_cfg(), &ds, 7);

    let before = model.evaluate(&ds);
    assert_eq!(before.num_queries, NUM_QUERIES);
    assert_eq!(
        metric_bits(&before),
        UNTRAINED_BITS,
        "untrained metrics moved: got {before:?} — the evaluate_ranking refactor is no longer behaviour-preserving"
    );

    model.fit(&ds);
    let after = model.evaluate(&ds);
    assert_eq!(after.num_queries, NUM_QUERIES);
    assert_eq!(
        metric_bits(&after),
        TRAINED_BITS,
        "trained metrics moved: got {after:?} — training or evaluation drifted from the pinned seed run"
    );
}

#[test]
fn exact_backend_matches_dense_bit_for_bit() {
    let ds = seed_dataset();
    let mut cfg = tiny_cfg();
    cfg.retrieval.backend = RetrievalBackend::Exact;
    let model = DesalignModel::new(cfg, &ds, 7);
    let exact = model.evaluate(&ds);
    assert_eq!(exact.num_queries, NUM_QUERIES);
    assert_eq!(
        metric_bits(&exact),
        UNTRAINED_BITS,
        "exact blocked backend diverged from the dense pin: got {exact:?}"
    );
}

#[test]
fn ivf_backend_stays_close_on_the_seed_workload() {
    // IVF is approximate: no bit pin, but on the 54-pair seed workload its
    // metrics must stay within a few candidates of exact, and the pipeline
    // must not fall back to dense silently producing the exact bits plus
    // drift elsewhere.
    let ds = seed_dataset();
    let mut cfg = tiny_cfg();
    cfg.retrieval.backend = RetrievalBackend::Ivf;
    cfg.retrieval.nprobe = 8; // ⌈√54⌉ = 8 cells → full probe on this size
    let model = DesalignModel::new(cfg, &ds, 7);
    let ivf = model.evaluate(&ds);
    assert_eq!(ivf.num_queries, NUM_QUERIES);
    let exact = f32::from_bits(UNTRAINED_BITS.1);
    assert!(
        (ivf.hits_at_10 - exact).abs() <= 4.0 / NUM_QUERIES as f32 + 1e-6,
        "IVF H@10 {} strayed > 4 candidates from exact {exact}",
        ivf.hits_at_10
    );
}

#[test]
fn model_rejects_csls_k_larger_than_the_candidate_pool() {
    let ds = seed_dataset();
    let mut cfg = tiny_cfg();
    cfg.retrieval.csls_k = ds.source.num_entities.max(ds.target.num_entities) + 10;
    let Err(err) = DesalignModel::try_new(cfg, &ds, 7) else {
        panic!("csls_k beyond the pool must be rejected");
    };
    assert_eq!(err.class, DefectClass::Config);
    assert!(err.to_string().contains("csls_k"), "error should name the knob: {err}");
}

#[test]
fn csls_decode_with_rejects_what_csls_decode_clamps() {
    // The historical defect: csls_decode silently clamps k = 10 on a 4×6
    // matrix. The validated variant refuses the same input.
    use desalign_eval::SimilarityMatrix;
    use desalign_tensor::{normal_matrix, rng_from_seed};
    let mut rng = rng_from_seed(2);
    let sim = SimilarityMatrix::new(normal_matrix(&mut rng, 4, 6, 0.0, 1.0));
    let clamped = desalign_core::csls_decode(&sim); // legacy path still works
    assert_eq!(clamped.shape(), (4, 6));
    let err = desalign_core::csls_decode_with(&sim, 10).expect_err("k = 10 > 4 rows must be rejected");
    assert_eq!(err.class, DefectClass::Config);
    let ok = desalign_core::csls_decode_with(&sim, 3).expect("k = 3 fits both sides");
    assert_eq!(ok.shape(), (4, 6));
}
