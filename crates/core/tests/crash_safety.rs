//! End-to-end crash-safety contract of the training checkpoint
//! (docs/RELIABILITY.md):
//!
//! 1. **Bit-identical resume** — `fit(n)` and `fit(k); save; kill; load;
//!    fit(n−k)` produce byte-identical weights, optimizer state, and
//!    post-resume loss history.
//! 2. **Torn writes are invisible** — killing a checkpoint overwrite at any
//!    byte leaves a file that verifies and resumes as exactly one of the
//!    two generations.
//! 3. **Mismatch rejection** — a checkpoint from a different seed or a
//!    damaged file is refused with a clean error, and `resume_or_start`
//!    only falls back to a fresh start when the file is *absent*.

use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{AlignmentDataset, DatasetSpec, SynthConfig};
use desalign_testkit::fault::{kill_during_atomic_write, truncate_file};
use desalign_util::{checksum64, read_verified, temp_path, FOOTER_LEN};
use std::path::PathBuf;

fn tiny_cfg(epochs: usize) -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 16;
    cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
    cfg.epochs = epochs;
    cfg.batch_size = 64;
    cfg
}

fn dataset(seed: u64) -> AlignmentDataset {
    SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(seed)
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("desalign-crash-safety");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(temp_path(&path)).ok();
    path
}

/// Bit-level fingerprint of everything the trajectory depends on that is
/// visible through the public API.
fn weights_fingerprint(model: &DesalignModel) -> u64 {
    checksum64(model.params().weights_to_json_string().as_bytes())
}

fn loss_bits(report: &desalign_core::TrainReport) -> Vec<u32> {
    report.loss_history.iter().map(|l| l.total.to_bits()).collect()
}

#[test]
fn resume_is_bit_identical_to_straight_run() {
    let ds = dataset(41);
    let path = ckpt_path("resume-bit-identical.ckpt");
    let (cfg, seed, split) = (tiny_cfg(8), 11u64, 3usize);

    // Straight run: all epochs in one process.
    let mut straight = DesalignModel::new(cfg.clone(), &ds, seed);
    let straight_report = straight.fit(&ds);

    // Crashing run: train `split` epochs, checkpoint, then "the process
    // dies". A fresh model (fresh RNG, fresh weights — as a new process
    // would build) resumes from the file and finishes the run.
    let mut first = DesalignModel::new(cfg.clone(), &ds, seed);
    let mut state = first.begin_training(&ds);
    first.train_epochs(&mut state, split);
    first.save_checkpoint(&state, &path).expect("checkpoint");
    drop(first); // the crash

    let mut resumed = DesalignModel::new(cfg, &ds, seed);
    let mut state = resumed.resume_training(&ds, &path).expect("resume");
    assert_eq!(state.next_epoch(), split);
    resumed.train_epochs(&mut state, usize::MAX);
    let resumed_report = resumed.end_training(state);

    assert_eq!(weights_fingerprint(&straight), weights_fingerprint(&resumed), "weights diverged after resume");
    assert_eq!(
        loss_bits(&straight_report)[split..],
        loss_bits(&resumed_report)[..],
        "post-resume loss history diverged"
    );
    // `epochs_run` is the global epoch counter, so both runs report the
    // same total even though the resumed process only executed n−k epochs.
    assert_eq!(straight_report.epochs_run, resumed_report.epochs_run);
    let (m1, m2) = (straight.evaluate(&ds), resumed.evaluate(&ds));
    assert_eq!(m1.hits_at_1.to_bits(), m2.hits_at_1.to_bits());
    assert_eq!(m1.mrr.to_bits(), m2.mrr.to_bits());
    std::fs::remove_file(&path).ok();
}

#[test]
fn inference_load_restores_weights_bit_identically() {
    let ds = dataset(47);
    let path = ckpt_path("inference-load.ckpt");
    let (cfg, seed) = (tiny_cfg(3), 13u64);

    let mut trained = DesalignModel::new(cfg.clone(), &ds, seed);
    let mut state = trained.begin_training(&ds);
    trained.train_epochs(&mut state, usize::MAX);
    trained.save_checkpoint(&state, &path).expect("checkpoint");
    trained.end_training(state);

    // Two independent "server processes" load the same file: both must
    // hold byte-identical weights and produce bit-identical retrieval
    // embeddings (the restart-determinism contract desalign-serve rests
    // on).
    let mut served_a = DesalignModel::new(cfg.clone(), &ds, seed);
    served_a.load_checkpoint_inference(&ds, &path).expect("inference load");
    let mut served_b = DesalignModel::new(cfg.clone(), &ds, seed);
    served_b.load_checkpoint_inference(&ds, &path).expect("inference load");
    assert_eq!(weights_fingerprint(&trained), weights_fingerprint(&served_a));
    assert_eq!(weights_fingerprint(&served_a), weights_fingerprint(&served_b));
    let (xs_a, _) = served_a.retrieval_embeddings();
    let (xs_b, _) = served_b.retrieval_embeddings();
    assert_eq!(
        xs_a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        xs_b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "retrieval embeddings diverged across inference loads"
    );

    // The identity header is still enforced: a wrong-seed model refuses.
    let mut wrong = DesalignModel::new(cfg, &ds, seed + 1);
    assert!(wrong.load_checkpoint_inference(&ds, &path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn killed_checkpoint_overwrite_resumes_as_exactly_one_generation() {
    let ds = dataset(42);
    let path = ckpt_path("killed-overwrite.ckpt");
    let (cfg, seed) = (tiny_cfg(6), 13u64);

    // Generation A after 2 epochs, generation B after 4, from one run.
    let mut model = DesalignModel::new(cfg.clone(), &ds, seed);
    let mut state = model.begin_training(&ds);
    model.train_epochs(&mut state, 2);
    let gen_a = model.checkpoint_payload(&state).into_bytes();
    model.train_epochs(&mut state, 2);
    let gen_b = model.checkpoint_payload(&state).into_bytes();

    let frame_len = gen_b.len() + FOOTER_LEN;
    // Every-byte verification is done at the frame layer in desalign-util;
    // here we sweep a stride plus the boundary offsets and prove the full
    // read-verify path end to end, with real resumes at the interesting
    // points.
    let mut offsets: Vec<usize> = (0..frame_len).step_by(257).collect();
    offsets.extend([0, 1, gen_b.len(), frame_len - 1, frame_len]);

    for kill_after in offsets {
        desalign_util::atomic_write(&path, &gen_a).expect("seed generation A");
        let completed = kill_during_atomic_write(&path, &gen_b, kill_after).expect("simulated write");
        let on_disk = read_verified(&path).expect("destination must verify after the kill");
        let want = if completed { &gen_b } else { &gen_a };
        assert_eq!(&on_disk, want, "tear at byte {kill_after}");

        // Whichever generation survived must actually resume.
        let mut fresh = DesalignModel::new(cfg.clone(), &ds, seed);
        let st = fresh.resume_training(&ds, &path).expect("surviving generation resumes");
        assert_eq!(st.next_epoch(), if completed { 4 } else { 2 }, "tear at byte {kill_after}");
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(temp_path(&path)).ok();
}

#[test]
fn resume_rejects_mismatches_and_damage() {
    let ds = dataset(43);
    let path = ckpt_path("mismatch.ckpt");
    let cfg = tiny_cfg(4);

    let mut model = DesalignModel::new(cfg.clone(), &ds, 17);
    let mut state = model.begin_training(&ds);
    model.train_epochs(&mut state, 2);
    model.save_checkpoint(&state, &path).expect("checkpoint");

    // Different seed → different trajectory; the checkpoint must refuse.
    let mut wrong_seed = DesalignModel::new(cfg.clone(), &ds, 18);
    assert!(wrong_seed.resume_training(&ds, &path).is_err(), "seed mismatch accepted");

    // Different config (digest changes) → refuse.
    let mut other_cfg = cfg.clone();
    other_cfg.hidden_dim = 8;
    other_cfg.validate().expect("still valid");
    let mut wrong_cfg = DesalignModel::new(other_cfg, &ds, 17);
    assert!(wrong_cfg.resume_training(&ds, &path).is_err(), "config mismatch accepted");

    // Different dataset → refuse.
    let other_ds = dataset(44);
    let mut wrong_ds = DesalignModel::new(cfg.clone(), &other_ds, 17);
    assert!(wrong_ds.resume_training(&other_ds, &path).is_err(), "dataset mismatch accepted");

    // Damaged file → clean InvalidData from the frame check, and
    // resume_or_start must NOT silently restart over it.
    let full = std::fs::metadata(&path).expect("meta").len();
    truncate_file(&path, full - 3).expect("truncate");
    let mut damaged = DesalignModel::new(cfg.clone(), &ds, 17);
    match damaged.resume_training(&ds, &path) {
        Ok(_) => panic!("torn checkpoint accepted"),
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
    }
    assert!(damaged.resume_or_start(&ds, &path).is_err(), "resume_or_start restarted over a torn file");

    // Absent file → resume_or_start begins a fresh run at epoch 0.
    std::fs::remove_file(&path).ok();
    let st = damaged.resume_or_start(&ds, &path).expect("fresh start");
    assert_eq!(st.next_epoch(), 0);
    std::fs::remove_file(temp_path(&path)).ok();
}
