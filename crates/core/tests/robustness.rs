//! End-to-end corruption tolerance (docs/RELIABILITY.md, "Data-plane
//! robustness"): for **every** corruption class the testkit can inject,
//! the full `Repair`-audit → train → evaluate pipeline must complete
//! without panicking and with finite loss, Dirichlet energy, and ranking
//! metrics. Missing-modality degradations additionally run with
//! `mask_missing_modalities` on, exercising the masked-fusion path under
//! the exact conditions it exists for.

use desalign_core::{DesalignConfig, DesalignModel, TrainReport};
use desalign_eval::AlignmentMetrics;
use desalign_mmkg::{AlignmentDataset, AuditPolicy, DatasetSpec, SynthConfig};
use desalign_testkit::{corrupt_dataset, CorruptionKind};

fn tiny_cfg() -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 16;
    cfg.feature_dims = desalign_mmkg::FeatureDims { relation: 32, attribute: 32, visual: 64 };
    cfg.epochs = 3;
    cfg.eval_every = 2;
    cfg.batch_size = 64;
    cfg.mask_missing_modalities = true;
    cfg
}

fn dataset() -> AlignmentDataset {
    SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(17)
}

fn assert_finite_run(kind: CorruptionKind, report: &TrainReport, metrics: &AlignmentMetrics) {
    let name = kind.name();
    assert!(report.epochs_run > 0, "{name}: no epochs ran");
    for (i, l) in report.loss_history.iter().enumerate() {
        assert!(l.total.is_finite(), "{name}: non-finite loss {} at epoch {i}", l.total);
    }
    for trace in &report.energy_history {
        for &e in trace.source.iter().chain(&trace.target) {
            assert!(e.is_finite(), "{name}: non-finite Dirichlet energy at epoch {}", trace.epoch);
        }
    }
    assert!(metrics.hits_at_1.is_finite() && (0.0..=1.0).contains(&metrics.hits_at_1), "{name}: H@1 = {}", metrics.hits_at_1);
    assert!(metrics.hits_at_10.is_finite() && (0.0..=1.0).contains(&metrics.hits_at_10), "{name}: H@10 = {}", metrics.hits_at_10);
    assert!(metrics.mrr.is_finite() && (0.0..=1.0).contains(&metrics.mrr), "{name}: MRR = {}", metrics.mrr);
    assert!(metrics.num_queries > 0, "{name}: evaluated nothing");
}

#[test]
fn every_corruption_class_trains_and_evaluates_finite_after_repair() {
    for kind in CorruptionKind::ALL {
        let mut ds = dataset();
        let applied = corrupt_dataset(&mut ds, kind, 0.3, 23);
        assert!(applied > 0, "{}: corruptor applied nothing", kind.name());

        let report = ds
            .audit(AuditPolicy::Repair)
            .unwrap_or_else(|e| panic!("{}: repair audit refused the dataset: {e}", kind.name()));
        if !kind.is_degradation() {
            assert!(report.total_defects() > 0, "{}: repair found nothing to fix", kind.name());
        }

        let mut model = DesalignModel::try_new(tiny_cfg(), &ds, 5)
            .unwrap_or_else(|e| panic!("{}: repaired dataset rejected by model setup: {e}", kind.name()));
        let train = model.fit(&ds);
        let metrics = model.evaluate(&ds);
        assert_finite_run(kind, &train, &metrics);
    }
}

#[test]
fn heavy_modality_drop_stays_finite_with_masking() {
    // The paper's R_img sweep taken to the edge: drop 90% of images and
    // most attribute text, keep training. Masked fusion must renormalize
    // around the holes rather than propagate zeros or NaNs.
    let mut ds = dataset();
    corrupt_dataset(&mut ds, CorruptionKind::VisualDrop, 0.9, 31);
    corrupt_dataset(&mut ds, CorruptionKind::TextDrop, 0.7, 31);
    ds.audit(AuditPolicy::Repair).expect("degraded dataset is structurally clean");

    let mut model = DesalignModel::try_new(tiny_cfg(), &ds, 5).expect("setup");
    let train = model.fit(&ds);
    let metrics = model.evaluate(&ds);
    assert_finite_run(CorruptionKind::VisualDrop, &train, &metrics);
}
