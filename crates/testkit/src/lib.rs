//! Deterministic property-test harness for the DESAlign workspace.
//!
//! An in-repo replacement for `proptest`, tuned to this workspace's needs:
//!
//! - **Deterministic, seeded case generation.** Every property derives its
//!   case seeds from the property *name* (FNV-1a hashed) plus a
//!   workspace-wide base seed, so runs are reproducible across machines and
//!   parallel test threads, and two properties in one file never share a
//!   stream. A failure report always prints the case seed needed to replay
//!   exactly that input.
//! - **Fixed iteration counts.** Case counts are part of the test source,
//!   not environment-dependent, so CI time and coverage are predictable.
//! - **Input reporting on failure.** The failing case's `Debug`
//!   representation, its index, and its seed are all part of the panic
//!   message.
//! - **Optional halving-style shrinking.** [`check_shrink`] takes a
//!   candidate-proposing closure; the harness greedily walks to a smaller
//!   failing input (bounded number of steps). [`shrink`] provides the
//!   standard halving proposals for slices and scalars.
//!
//! ```
//! use desalign_testkit as testkit;
//!
//! testkit::check("addition_commutes", 64, |rng| {
//!     (rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0))
//! }, |&(a, b)| {
//!     testkit::ensure!((a + b - (b + a)).abs() < 1e-6, "{a} + {b} not commutative");
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod fault;

use std::fmt::Debug;

pub use corrupt::{corrupt_dataset, corrupt_file, mutate_bytes, CorruptionKind};
pub use desalign_tensor::{rng_from_seed, Matrix, Rng64, SliceRandom};
pub use fault::{kill_during_atomic_write, truncate_file, KillAfterWriter};

/// Workspace-wide base seed; combined with the property name per case.
pub const BASE_SEED: u64 = 0xDE5A_1167_0000_0001;

/// Upper bound on greedy shrink adoptions before reporting.
const MAX_SHRINK_STEPS: usize = 200;

/// FNV-1a hash of the property name — gives each property its own
/// deterministic stream without global state.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed that regenerates case `i` of property `name`.
pub fn case_seed(name: &str, case: u64) -> u64 {
    BASE_SEED ^ fnv1a(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn render_input<T: Debug>(input: &T) -> String {
    let mut s = format!("{input:#?}");
    const LIMIT: usize = 4000;
    if s.len() > LIMIT {
        let mut cut = LIMIT;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push_str("… (truncated)");
    }
    s
}

/// Runs `prop` against `cases` inputs drawn from `gen`, panicking with a
/// replayable report on the first failure. No shrinking.
pub fn check<T, G, P>(name: &str, cases: u64, mut gen: G, mut prop: P)
where
    T: Debug,
    G: FnMut(&mut Rng64) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    run(name, cases, &mut gen, &mut prop, None::<&mut dyn FnMut(&T) -> Vec<T>>);
}

/// Like [`check`], but on failure greedily minimizes the input: `shrink`
/// proposes smaller candidates (see the [`shrink`] module for halving
/// helpers) and the harness adopts the first candidate that still fails,
/// repeating until no proposal fails or the step budget runs out.
pub fn check_shrink<T, G, P, S>(name: &str, cases: u64, mut gen: G, mut shrink: S, mut prop: P)
where
    T: Debug,
    G: FnMut(&mut Rng64) -> T,
    P: FnMut(&T) -> Result<(), String>,
    S: FnMut(&T) -> Vec<T>,
{
    let mut dyn_shrink = |t: &T| shrink(t);
    run(name, cases, &mut gen, &mut prop, Some(&mut dyn_shrink as &mut dyn FnMut(&T) -> Vec<T>));
}

fn run<T, G, P>(name: &str, cases: u64, gen: &mut G, prop: &mut P, mut shrink: Option<&mut dyn FnMut(&T) -> Vec<T>>)
where
    T: Debug,
    G: FnMut(&mut Rng64) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    assert!(cases > 0, "property '{name}' must run at least one case");
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = rng_from_seed(seed);
        let input = gen(&mut rng);
        let Err(message) = prop(&input) else { continue };

        // Greedy halving-style minimization, when a shrinker was given.
        let (mut cur, mut cur_msg, mut steps) = (input, message, 0usize);
        if let Some(shrink) = shrink.as_deref_mut() {
            'outer: while steps < MAX_SHRINK_STEPS {
                for candidate in shrink(&cur) {
                    if let Err(msg) = prop(&candidate) {
                        cur = candidate;
                        cur_msg = msg;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
        }
        let shrunk_note = if steps > 0 { format!(" (shrunk {steps} steps)") } else { String::new() };
        panic!(
            "property '{name}' failed at case {case}/{cases} (case seed {seed:#x}){shrunk_note}\n\
             error: {cur_msg}\n\
             input: {}",
            render_input(&cur),
        );
    }
}

/// Halving-style shrink proposals for common input shapes.
pub mod shrink {
    /// Proposals for a float slice: drop the first/second half, halve every
    /// element towards zero, and zero it outright.
    pub fn halve_f32s(v: &[f32]) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        if v.len() > 1 {
            out.push(v[..v.len() / 2].to_vec());
            out.push(v[v.len() / 2..].to_vec());
        }
        if v.iter().any(|&x| x != 0.0) {
            out.push(v.iter().map(|&x| x / 2.0).collect());
            out.push(vec![0.0; v.len()]);
        }
        out
    }

    /// Proposals for a scalar: halve towards zero, and zero.
    pub fn halve_f32(x: f32) -> Vec<f32> {
        if x == 0.0 {
            Vec::new()
        } else {
            vec![x / 2.0, 0.0]
        }
    }

    /// Proposals for a count: halve towards `min`, and `min` itself.
    pub fn halve_usize(x: usize, min: usize) -> Vec<usize> {
        if x <= min {
            Vec::new()
        } else {
            vec![min + (x - min) / 2, min]
        }
    }
}

/// Common generators for the workspace's property tests.
pub mod gen {
    use desalign_tensor::{Matrix, Rng64};

    /// Vector of uniform floats in `[lo, hi)`.
    pub fn f32_vec(rng: &mut Rng64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(lo..hi)).collect()
    }

    /// Matrix with uniform entries in `[lo, hi)`.
    pub fn matrix(rng: &mut Rng64, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_vec(rows, cols, f32_vec(rng, rows * cols, lo, hi))
    }

    /// Vector of uniform indices in `[0, bound)`.
    pub fn usize_vec(rng: &mut Rng64, len: usize, bound: usize) -> Vec<usize> {
        (0..len).map(|_| rng.gen_range(0..bound)).collect()
    }

    /// Vector of fair coin flips.
    pub fn bool_vec(rng: &mut Rng64, len: usize) -> Vec<bool> {
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }
}

/// Fails the enclosing property with a formatted message unless `cond`
/// holds. Usable only inside closures returning `Result<(), String>`.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property unless both sides are equal, reporting both.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Fails the enclosing property if both sides are equal.
#[macro_export]
macro_rules! ensure_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!("{} == {} (both {:?})", stringify!($a), stringify!($b), left));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        check("always_true", 32, |rng| rng.gen_range(0..10usize), |_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 32);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut v = Vec::new();
            check("determinism_probe", 8, |rng| rng.gen_range(0..1_000_000usize), |&x| {
                v.push(x);
                Ok(())
            });
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_get_different_streams() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    fn failing_property_reports_input_and_seed() {
        let err = std::panic::catch_unwind(|| {
            check("expected_failure", 16, |rng| rng.gen_range(10..20usize), |&x| {
                ensure!(x < 10, "x = {x} too big");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("expected_failure"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
        assert!(msg.contains("too big"), "{msg}");
    }

    #[test]
    fn shrinking_minimizes_the_failing_vector() {
        // Property: fails whenever any element exceeds 0.5. Halving the
        // vector must home in on a small witness rather than report the
        // original 64-element input.
        let err = std::panic::catch_unwind(|| {
            check_shrink(
                "shrunk_failure",
                16,
                |rng| gen::f32_vec(rng, 64, 0.0, 1.0),
                |v| shrink::halve_f32s(v),
                |v| {
                    ensure!(v.iter().all(|&x| x <= 0.5), "element above threshold in {} elems", v.len());
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("shrunk"), "{msg}");
        // The witness must have been cut well below the original 64.
        let witness_len: usize = msg
            .split("in ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("witness length in message");
        assert!(witness_len <= 8, "shrinker left {witness_len} elements: {msg}");
    }

    #[test]
    fn ensure_macros_produce_errors() {
        let f = |x: usize| -> Result<(), String> {
            ensure!(x > 1);
            ensure_eq!(x % 2, 0);
            ensure_ne!(x, 6);
            Ok(())
        };
        assert!(f(4).is_ok());
        assert!(f(0).unwrap_err().contains("assertion failed"));
        assert!(f(3).unwrap_err().contains("left"));
        assert!(f(6).unwrap_err().contains("=="));
    }
}
