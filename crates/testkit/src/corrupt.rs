//! Deterministic dataset corruptors for robustness testing.
//!
//! Each corruptor injects exactly one defect class from the
//! `desalign-mmkg` audit taxonomy into an [`AlignmentDataset`], seeded
//! from the in-repo RNG so every corrupted dataset is reproducible from
//! `(kind, severity, seed)` alone. The intended contract, exercised by
//! the property tests in `desalign-mmkg`, is:
//!
//! - corrupting then auditing under `Repair` yields a dataset that
//!   passes a `Strict` audit (the auditor fixes what the corruptor broke);
//! - [`CorruptionKind::VisualDrop`] / [`CorruptionKind::TextDrop`] model
//!   the paper's missing-modality degradation (`R_img` sweeps) and leave
//!   the dataset structurally clean — missing modalities are a data
//!   condition, not a defect;
//! - the same `(kind, severity, seed)` always produces the same bytes.
//!
//! [`mutate_bytes`] is the loader-fuzzing half: byte-level mutations
//! (bit flips, overwrites, insertions, deletions, truncation) applied to
//! a serialized dataset, for proving that `load_dataset_json` never
//! panics — every mutated payload either loads clean or returns a typed
//! error.

use desalign_mmkg::AlignmentDataset;
use desalign_tensor::{rng_from_seed, Rng64};

/// One class of injectable dataset damage.
///
/// The first group corrupts feature rows, the second the triple lists,
/// the third the alignment pair lists; `VisualDrop` / `TextDrop` degrade
/// modality coverage without introducing structural defects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Overwrite one element of an image row with NaN.
    NanFeature,
    /// Overwrite one element of an image row with +∞.
    InfFeature,
    /// Zero an entire image row (norm collapses to 0).
    ZeroNormFeature,
    /// Append one extra element to an image row (dimension mismatch).
    DimMismatch,
    /// Delete image rows (`images[e] = None`) — missing visual modality.
    VisualDrop,
    /// Delete all attribute triples of chosen entities — missing text.
    TextDrop,
    /// Append relation triples whose tail entity does not exist.
    DanglingEdge,
    /// Append relation triples with an out-of-vocabulary relation id.
    UnknownRelation,
    /// Append self-loop relation triples `(h, r, h)`.
    SelfLoop,
    /// Append exact copies of existing relation triples.
    DuplicateTriple,
    /// Append alignment pairs referencing nonexistent entities.
    PairOutOfRange,
    /// Append copies of existing pairs (breaks the one-to-one mapping).
    PairDuplicate,
}

impl CorruptionKind {
    /// Every corruption kind, for exhaustive sweeps.
    pub const ALL: [CorruptionKind; 12] = [
        CorruptionKind::NanFeature,
        CorruptionKind::InfFeature,
        CorruptionKind::ZeroNormFeature,
        CorruptionKind::DimMismatch,
        CorruptionKind::VisualDrop,
        CorruptionKind::TextDrop,
        CorruptionKind::DanglingEdge,
        CorruptionKind::UnknownRelation,
        CorruptionKind::SelfLoop,
        CorruptionKind::DuplicateTriple,
        CorruptionKind::PairOutOfRange,
        CorruptionKind::PairDuplicate,
    ];

    /// Stable kebab-case name (used as a JSON key by the robustness bench).
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::NanFeature => "nan-feature",
            CorruptionKind::InfFeature => "inf-feature",
            CorruptionKind::ZeroNormFeature => "zero-norm-feature",
            CorruptionKind::DimMismatch => "dim-mismatch",
            CorruptionKind::VisualDrop => "visual-drop",
            CorruptionKind::TextDrop => "text-drop",
            CorruptionKind::DanglingEdge => "dangling-edge",
            CorruptionKind::UnknownRelation => "unknown-relation",
            CorruptionKind::SelfLoop => "self-loop",
            CorruptionKind::DuplicateTriple => "duplicate-triple",
            CorruptionKind::PairOutOfRange => "pair-out-of-range",
            CorruptionKind::PairDuplicate => "pair-duplicate",
        }
    }

    /// Whether this kind leaves the dataset structurally clean (a data
    /// *condition* the model must tolerate, not a defect the auditor
    /// repairs).
    pub fn is_degradation(self) -> bool {
        matches!(self, CorruptionKind::VisualDrop | CorruptionKind::TextDrop)
    }
}

/// How many corruptions to apply given `candidates` sites and `severity`
/// in `[0, 1]`: at least one whenever any site exists, never more than
/// all of them.
fn budget(candidates: usize, severity: f32) -> usize {
    if candidates == 0 {
        return 0;
    }
    let s = severity.clamp(0.0, 1.0);
    ((candidates as f32 * s).ceil() as usize).clamp(1, candidates)
}

/// `count` distinct indices out of `0..n`, in deterministic shuffled order.
fn pick_indices(rng: &mut Rng64, n: usize, count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    // Fisher–Yates; only the first `count` positions matter.
    for i in 0..count.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(count);
    idx
}

/// Injects `kind` into `ds` at the given `severity` (fraction of eligible
/// sites, clamped to `[0, 1]`; at least one corruption is applied whenever
/// an eligible site exists). Deterministic in `(kind, severity, seed)`.
///
/// Returns the number of corruptions actually applied — `0` only when the
/// dataset has no eligible site for that kind (e.g. `DuplicateTriple` on a
/// graph without relation triples).
pub fn corrupt_dataset(ds: &mut AlignmentDataset, kind: CorruptionKind, severity: f32, seed: u64) -> usize {
    let mut rng = rng_from_seed(seed ^ 0xC0_22_0D_00 ^ kind as u64);
    match kind {
        CorruptionKind::NanFeature => corrupt_rows(ds, severity, &mut rng, |rng, row| {
            let i = rng.gen_range(0..row.len());
            row[i] = f32::NAN;
        }),
        CorruptionKind::InfFeature => corrupt_rows(ds, severity, &mut rng, |rng, row| {
            let i = rng.gen_range(0..row.len());
            row[i] = f32::INFINITY;
        }),
        CorruptionKind::ZeroNormFeature => corrupt_rows(ds, severity, &mut rng, |_, row| {
            row.fill(0.0);
        }),
        CorruptionKind::DimMismatch => corrupt_rows(ds, severity, &mut rng, |rng, row| {
            row.push(rng.gen_range(-1.0f32..1.0));
        }),
        CorruptionKind::VisualDrop => {
            let mut applied = 0;
            for kg in [&mut ds.source, &mut ds.target] {
                let present: Vec<usize> = (0..kg.images.len()).filter(|&e| kg.images[e].is_some()).collect();
                let count = budget(present.len(), severity);
                for &slot in pick_indices(&mut rng, present.len(), count).iter() {
                    kg.images[present[slot]] = None;
                    applied += 1;
                }
            }
            applied
        }
        CorruptionKind::TextDrop => {
            let mut applied = 0;
            for kg in [&mut ds.source, &mut ds.target] {
                let mut with_text: Vec<usize> = kg.attr_triples.iter().map(|&(e, _)| e).collect();
                with_text.sort_unstable();
                with_text.dedup();
                let count = budget(with_text.len(), severity);
                let drop: std::collections::HashSet<usize> =
                    pick_indices(&mut rng, with_text.len(), count).iter().map(|&slot| with_text[slot]).collect();
                kg.attr_triples.retain(|&(e, _)| !drop.contains(&e));
                applied += drop.len();
            }
            applied
        }
        CorruptionKind::DanglingEdge => append_triples(ds, severity, &mut rng, |rng, kg| {
            let h = rng.gen_range(0..kg.num_entities.max(1));
            let r = rng.gen_range(0..kg.num_relations.max(1));
            let t = kg.num_entities + rng.gen_range(0..16usize);
            (h, r, t)
        }),
        CorruptionKind::UnknownRelation => append_triples(ds, severity, &mut rng, |rng, kg| {
            let h = rng.gen_range(0..kg.num_entities.max(1));
            let t = rng.gen_range(0..kg.num_entities.max(1));
            (h, kg.num_relations + rng.gen_range(0..16usize), t)
        }),
        CorruptionKind::SelfLoop => append_triples(ds, severity, &mut rng, |rng, kg| {
            let h = rng.gen_range(0..kg.num_entities.max(1));
            let r = rng.gen_range(0..kg.num_relations.max(1));
            (h, r, h)
        }),
        CorruptionKind::DuplicateTriple => {
            let mut applied = 0;
            for kg in [&mut ds.source, &mut ds.target] {
                let count = budget(kg.rel_triples.len(), severity);
                for _ in 0..count {
                    let dup = kg.rel_triples[rng.gen_range(0..kg.rel_triples.len())];
                    kg.rel_triples.push(dup);
                    applied += 1;
                }
            }
            applied
        }
        CorruptionKind::PairOutOfRange => {
            let count = budget(ds.train_pairs.len() + ds.test_pairs.len(), severity);
            for i in 0..count {
                let bad = (ds.source.num_entities + rng.gen_range(0..16usize), rng.gen_range(0..ds.target.num_entities.max(1)));
                if i % 2 == 0 {
                    ds.test_pairs.push(bad);
                } else {
                    ds.train_pairs.push(bad);
                }
            }
            count
        }
        CorruptionKind::PairDuplicate => {
            let existing: Vec<(usize, usize)> = ds.train_pairs.iter().chain(&ds.test_pairs).copied().collect();
            let count = budget(existing.len(), severity);
            for _ in 0..count {
                let dup = existing[rng.gen_range(0..existing.len())];
                ds.test_pairs.push(dup);
            }
            count
        }
    }
}

/// Corrupts `budget(present-rows, severity)` image rows per KG side with
/// `damage`, returning the number of rows touched.
fn corrupt_rows(
    ds: &mut AlignmentDataset,
    severity: f32,
    rng: &mut Rng64,
    mut damage: impl FnMut(&mut Rng64, &mut Vec<f32>),
) -> usize {
    let mut applied = 0;
    for kg in [&mut ds.source, &mut ds.target] {
        let present: Vec<usize> = (0..kg.images.len()).filter(|&e| kg.images[e].as_ref().is_some_and(|v| !v.is_empty())).collect();
        let count = budget(present.len(), severity);
        for &slot in pick_indices(rng, present.len(), count).iter() {
            let row = kg.images[present[slot]].as_mut().expect("present row");
            damage(rng, row);
            applied += 1;
        }
    }
    applied
}

/// Appends `budget(existing-triples, severity)` triples built by `make`
/// to each KG side, returning how many were added.
fn append_triples(
    ds: &mut AlignmentDataset,
    severity: f32,
    rng: &mut Rng64,
    mut make: impl FnMut(&mut Rng64, &desalign_mmkg::Mmkg) -> (usize, usize, usize),
) -> usize {
    let mut applied = 0;
    for kg in [&mut ds.source, &mut ds.target] {
        let count = budget(kg.rel_triples.len().max(1), severity);
        for _ in 0..count {
            let triple = make(rng, kg);
            kg.rel_triples.push(triple);
            applied += 1;
        }
    }
    applied
}

/// Applies `mutations` random byte-level edits to `bytes` — bit flips,
/// byte overwrites, insertions, deletions, and truncations — seeded so
/// every fuzz case is replayable. The result may be shorter, longer, or
/// empty; it is *never* guaranteed to be valid JSON, which is the point.
pub fn mutate_bytes(bytes: &[u8], mutations: usize, seed: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let mut rng = rng_from_seed(seed ^ 0xF0_55_00_01);
    for _ in 0..mutations {
        let op = rng.gen_range(0..5usize);
        match op {
            // Bit flip.
            0 if !out.is_empty() => {
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1u8 << rng.gen_range(0..8usize);
            }
            // Overwrite with an arbitrary byte.
            1 if !out.is_empty() => {
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen_range(0..256usize) as u8;
            }
            // Insert an arbitrary byte.
            2 => {
                let i = rng.gen_range(0..out.len() + 1);
                out.insert(i, rng.gen_range(0..256usize) as u8);
            }
            // Delete one byte.
            3 if !out.is_empty() => {
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
            // Truncate.
            4 if !out.is_empty() => {
                let keep = rng.gen_range(0..out.len());
                out.truncate(keep);
            }
            // Chosen op needs bytes we no longer have: fall back to insert.
            _ => {
                let i = rng.gen_range(0..out.len() + 1);
                out.insert(i, rng.gen_range(0..256usize) as u8);
            }
        }
    }
    out
}


/// Applies [`mutate_bytes`] to a file in place: reads it, mutates
/// `mutations` times from `seed`, writes the result back (which may be
/// shorter or longer than the original). Returns the new length.
///
/// This is the shard-level fuzzing entry point: the streaming auditor's
/// hostile-shard sweeps corrupt individual `shard-*.bin` files this way
/// and assert that reads never panic — every damaged shard either fails
/// its frame/checksum verification with a typed error or is quarantined.
pub fn corrupt_file(path: &std::path::Path, mutations: usize, seed: u64) -> std::io::Result<u64> {
    let bytes = std::fs::read(path)?;
    let out = mutate_bytes(&bytes, mutations, seed);
    let len = out.len() as u64;
    std::fs::write(path, out)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{dataset_fingerprint, AuditPolicy, DatasetSpec, SynthConfig};

    fn sample() -> AlignmentDataset {
        SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(7)
    }

    #[test]
    fn every_kind_is_deterministic_in_the_seed() {
        for kind in CorruptionKind::ALL {
            let (mut a, mut b) = (sample(), sample());
            let na = corrupt_dataset(&mut a, kind, 0.2, 99);
            let nb = corrupt_dataset(&mut b, kind, 0.2, 99);
            assert_eq!(na, nb, "{}", kind.name());
            assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&b), "{}", kind.name());
            // A different seed must produce a different dataset.
            let mut c = sample();
            corrupt_dataset(&mut c, kind, 0.2, 100);
            assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&c), "{}", kind.name());
        }
    }

    #[test]
    fn structural_kinds_break_strict_and_degradations_do_not() {
        for kind in CorruptionKind::ALL {
            let mut ds = sample();
            let n = corrupt_dataset(&mut ds, kind, 0.1, 11);
            assert!(n > 0, "{} applied nothing", kind.name());
            let strict = ds.audit(AuditPolicy::Strict);
            if kind.is_degradation() {
                assert!(strict.is_ok(), "{} should stay structurally clean", kind.name());
            } else {
                assert!(strict.is_err(), "{} should fail a strict audit", kind.name());
            }
        }
    }

    #[test]
    fn severity_scales_the_corruption_count() {
        let mut light = sample();
        let mut heavy = sample();
        let a = corrupt_dataset(&mut light, CorruptionKind::VisualDrop, 0.05, 5);
        let b = corrupt_dataset(&mut heavy, CorruptionKind::VisualDrop, 0.8, 5);
        assert!(b > a, "severity 0.8 dropped {b} rows vs {a} at 0.05");
        // Severity 1.0 drops every image.
        let mut all = sample();
        corrupt_dataset(&mut all, CorruptionKind::VisualDrop, 1.0, 5);
        assert_eq!(all.source.num_images() + all.target.num_images(), 0);
    }

    #[test]
    fn mutate_bytes_is_deterministic_and_actually_mutates() {
        let payload = br#"{"name": "ds", "train_pairs": [[0, 1], [2, 3]]}"#;
        let a = mutate_bytes(payload, 8, 42);
        let b = mutate_bytes(payload, 8, 42);
        assert_eq!(a, b);
        assert_ne!(a, payload.to_vec());
        assert_ne!(mutate_bytes(payload, 8, 43), a);
        // Zero mutations is the identity; an empty input never panics
        // (size-dependent ops fall back to insertion).
        assert_eq!(mutate_bytes(payload, 0, 1), payload.to_vec());
        assert_eq!(mutate_bytes(&[], 4, 1), mutate_bytes(&[], 4, 1));
    }
}
