//! Deterministic fault injection for crash-safety tests.
//!
//! The central tool is [`kill_during_atomic_write`]: it replays the exact
//! byte sequence of [`desalign_util::atomic_write`] — same framing, same
//! temp path, same rename point — but "kills the process" after a chosen
//! number of payload-stream bytes, leaving the filesystem exactly as a
//! real kill at that byte would. Sweeping the kill offset over every byte
//! of a write proves the atomic-replacement guarantee exhaustively:
//!
//! ```
//! use desalign_testkit::fault::kill_during_atomic_write;
//! use desalign_util::read_verified;
//!
//! let path = std::env::temp_dir().join("desalign-fault-doc.bin");
//! desalign_util::atomic_write(&path, b"generation 1").unwrap();
//! // Die after 3 bytes of the replacement write: the destination must
//! // still hold generation 1 in full.
//! kill_during_atomic_write(&path, b"generation 2", 3).unwrap();
//! assert_eq!(read_verified(&path).unwrap(), b"generation 1");
//! std::fs::remove_file(&path).ok();
//! std::fs::remove_file(desalign_util::temp_path(&path)).ok();
//! ```
//!
//! [`KillAfterWriter`] is the underlying building block — an `io::Write`
//! adapter that accepts exactly `n` bytes and then fails every further
//! write, emulating the kernel's view of a process that died mid-`write`.
//! [`truncate_file`] covers the other half of the threat model: torn
//! *reads* of files damaged at rest (bit rot, partial copies).

use desalign_util::{frame, temp_path};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// An `io::Write` adapter that accepts at most `budget` bytes, then
/// reports `BrokenPipe` — byte-exact emulation of a process killed
/// mid-write.
///
/// A partial `write` consumes the remaining budget first, exactly like a
/// short write racing a kill signal:
///
/// ```
/// use desalign_testkit::fault::KillAfterWriter;
/// use std::io::Write;
///
/// let mut w = KillAfterWriter::new(Vec::new(), 5);
/// assert_eq!(w.write(b"abc").unwrap(), 3);
/// assert_eq!(w.write(b"defgh").unwrap(), 2); // short write: budget hit
/// assert!(w.write(b"i").is_err());           // "process" is dead
/// assert_eq!(w.into_inner(), b"abcde");
/// ```
pub struct KillAfterWriter<W> {
    inner: W,
    budget: usize,
}

impl<W: Write> KillAfterWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before the kill.
    pub fn new(inner: W, budget: usize) -> Self {
        Self { inner, budget }
    }

    /// Remaining byte budget.
    pub fn remaining(&self) -> usize {
        self.budget
    }

    /// Unwraps the inner writer (what actually reached "disk").
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for KillAfterWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "killed: write budget exhausted"));
        }
        let n = buf.len().min(self.budget);
        let written = self.inner.write(&buf[..n])?;
        self.budget -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Replays `desalign_util::atomic_write(path, payload)` but kills the
/// writer after `kill_after` bytes of the framed temp-file stream.
///
/// Mirrors the real write sequence byte for byte:
///
/// 1. the frame (payload + 24-byte footer) is written to
///    [`desalign_util::temp_path`] — but only the first
///    `min(kill_after, frame_len)` bytes land, emulating the kill;
/// 2. the rename over `path` happens **only** when the budget covered
///    the entire frame (a real kill before `rename(2)` leaves the old
///    destination untouched; the syscall itself is atomic, so there is
///    no "half-renamed" state to simulate).
///
/// Returns `true` when the write completed (budget ≥ frame length), i.e.
/// the new generation is now at `path`; `false` when the kill struck
/// first and `path` still holds its previous contents.
pub fn kill_during_atomic_write(path: &Path, payload: &[u8], kill_after: usize) -> io::Result<bool> {
    let framed = frame(payload);
    let tmp = temp_path(path);
    let cut = kill_after.min(framed.len());
    fs::write(&tmp, &framed[..cut])?;
    if cut < framed.len() {
        return Ok(false); // died before finishing the temp file: no rename.
    }
    fs::rename(&tmp, path)?;
    Ok(true)
}

/// Truncates the file at `path` to its first `keep` bytes (no-op when it
/// is already shorter) — simulating damage at rest. Returns the
/// resulting length.
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<u64> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len().min(keep);
    f.set_len(len)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_util::{atomic_write, read_verified, FOOTER_LEN};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("desalign-fault-tests");
        fs::create_dir_all(&dir).expect("tempdir");
        dir.join(name)
    }

    fn cleanup(path: &Path) {
        fs::remove_file(path).ok();
        fs::remove_file(temp_path(path)).ok();
    }

    #[test]
    fn kill_at_every_byte_never_tears_the_destination() {
        let path = tmp("kill-sweep.bin");
        let old = b"old generation".as_slice();
        let new = b"new generation, somewhat longer".as_slice();
        let frame_len = new.len() + FOOTER_LEN;
        for kill_after in 0..=frame_len {
            atomic_write(&path, old).expect("seed old generation");
            let completed = kill_during_atomic_write(&path, new, kill_after).expect("simulated write");
            let expect: &[u8] = if completed { new } else { old };
            assert_eq!(completed, kill_after >= frame_len);
            assert_eq!(read_verified(&path).expect("destination readable"), expect, "kill_after = {kill_after}");
        }
        cleanup(&path);
    }

    #[test]
    fn kill_with_no_prior_generation_leaves_no_destination() {
        let path = tmp("kill-fresh.bin");
        cleanup(&path);
        let completed = kill_during_atomic_write(&path, b"first", 3).expect("simulated write");
        assert!(!completed);
        assert_eq!(read_verified(&path).expect_err("no destination").kind(), io::ErrorKind::NotFound);
        // The stale temp file is what a real crash leaves; a follow-up
        // write must succeed over it.
        atomic_write(&path, b"first").expect("recovery write");
        assert_eq!(read_verified(&path).expect("read"), b"first");
        cleanup(&path);
    }

    #[test]
    fn completed_simulation_matches_real_atomic_write() {
        let a = tmp("sim.bin");
        let b = tmp("real.bin");
        cleanup(&a);
        cleanup(&b);
        assert!(kill_during_atomic_write(&a, b"payload", usize::MAX).expect("sim"));
        atomic_write(&b, b"payload").expect("real");
        assert_eq!(fs::read(&a).expect("sim bytes"), fs::read(&b).expect("real bytes"), "simulation must write identical frames");
        cleanup(&a);
        cleanup(&b);
    }

    #[test]
    fn writer_budget_is_exact() {
        let mut w = KillAfterWriter::new(Vec::new(), 4);
        assert_eq!(w.write(b"ab").unwrap(), 2);
        assert_eq!(w.remaining(), 2);
        assert_eq!(w.write(b"cdef").unwrap(), 2);
        assert_eq!(w.remaining(), 0);
        assert_eq!(w.write(b"g").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.into_inner(), b"abcd");
    }

    #[test]
    fn truncate_simulates_damage_at_rest() {
        let path = tmp("truncate.bin");
        atomic_write(&path, b"some payload").expect("write");
        let full = fs::metadata(&path).expect("meta").len();
        let kept = truncate_file(&path, full - 1).expect("truncate");
        assert_eq!(kept, full - 1);
        assert_eq!(read_verified(&path).expect_err("torn").kind(), io::ErrorKind::InvalidData);
        // Truncating longer than the file is a no-op.
        assert_eq!(truncate_file(&path, u64::MAX).expect("noop"), full - 1);
        cleanup(&path);
    }
}
