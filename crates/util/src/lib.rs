//! Zero-dependency utilities for the DESAlign workspace.
//!
//! Three modules:
//!
//! - [`mod@json`] — a hand-rolled JSON value type with a writer and a
//!   recursive-descent parser. It replaces `serde`/`serde_json` for the
//!   workspace's needs — checkpoint files, dataset snapshots, config and
//!   benchmark-result dumps — without pulling any crates.io dependency.
//! - [`mod@atomicio`] — crash-safe file persistence: a checksummed frame
//!   container ([`frame`]/[`unframe`]) and write-to-temp + fsync +
//!   atomic-rename replacement ([`atomic_write`]/[`read_verified`]). This
//!   is the storage layer of the training-checkpoint subsystem documented
//!   in `docs/RELIABILITY.md`.
//! - [`mod@error`] — the workspace's typed error taxonomy:
//!   [`DesalignError`] carries a [`DefectClass`], a location, a context
//!   message, and a comparable cause chain. The data-plane boundaries
//!   (loader, auditor, graph construction, model setup) all report through
//!   it; see the "Data-plane robustness" section of `docs/RELIABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicio;
pub mod error;
pub mod json;

pub use atomicio::{atomic_write, checksum64, frame, read_verified, temp_path, unframe, FrameWriter, FOOTER_LEN, FOOTER_MAGIC};
pub use error::{DefectClass, DesalignError};
pub use json::{u64_from_json, u64_to_json, FromJson, Json, JsonError, ToJson};
