//! Zero-dependency utilities for the DESAlign workspace.
//!
//! Currently one module: [`mod@json`], a hand-rolled JSON value type with a
//! writer and a recursive-descent parser. It replaces `serde`/`serde_json`
//! for the workspace's needs — checkpoint files, dataset snapshots, config
//! and benchmark-result dumps — without pulling any crates.io dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use json::{FromJson, Json, JsonError, ToJson};
