//! The workspace-wide typed error taxonomy.
//!
//! Every fallible public boundary of the data plane — dataset loading,
//! auditing, graph construction, model setup — reports a
//! [`DesalignError`]: a defect **class** (what kind of thing went wrong),
//! a **location** (where in the input it was found, e.g.
//! `source.rel_triples[42]`), a free-form **context** message, and an
//! optional **cause** chain. The class is machine-readable (CI and the
//! auditor aggregate counts per class); the `Display` rendering is the
//! human-readable diagnostic.
//!
//! Hot kernels deliberately keep `debug_assert!`/`assert!` instead: an
//! invariant violation *inside* the compute graph is a bug, not an input
//! defect, and the data plane's job is to stop corrupt inputs before they
//! reach a kernel.
//!
//! ```
//! use desalign_util::{DefectClass, DesalignError};
//!
//! let inner = DesalignError::new(DefectClass::DanglingEndpoint, "source.rel_triples[3]", "tail 99 >= 40 entities");
//! let outer = inner.clone().wrap(DefectClass::Schema, "dataset.json", "dataset failed validation");
//! assert_eq!(outer.class, DefectClass::Schema);
//! assert!(outer.to_string().contains("dangling-endpoint"));
//! assert!(std::error::Error::source(&outer).is_some());
//! ```

use std::error::Error;
use std::fmt;

/// The defect taxonomy: every way an input can be wrong, as a closed enum.
///
/// The first group covers transport and shape failures (I/O, JSON);
/// the second group is the dataset-level defect classes the
/// `desalign-mmkg` auditor counts and repairs. [`DefectClass::name`]
/// gives the stable kebab-case identifier used in JSON reports and
/// telemetry counter names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DefectClass {
    /// Operating-system I/O failure (file missing, permission, torn read).
    Io,
    /// Byte stream is not syntactically valid JSON.
    Parse,
    /// JSON is well-formed but does not match the expected schema.
    Schema,
    /// A configuration value is out of its documented range.
    Config,
    /// A triple endpoint references an entity outside `0..num_entities`.
    DanglingEndpoint,
    /// A relation triple uses a relation id outside the vocabulary.
    UnknownRelation,
    /// An attribute triple uses an attribute id outside the vocabulary.
    UnknownAttribute,
    /// A relation triple with `head == tail`.
    SelfLoopTriple,
    /// An exact `(head, relation, tail)` duplicate of an earlier triple.
    DuplicateTriple,
    /// An alignment pair references an entity outside either graph.
    PairOutOfRange,
    /// An alignment pair reuses a source or target entity (one-to-one
    /// violation).
    DuplicatePair,
    /// A feature row contains `NaN` or `±∞`.
    NonFiniteFeature,
    /// A feature row whose ℓ2 norm is (numerically) zero.
    ZeroNormFeature,
    /// A feature row whose dimension disagrees with the rest of the graph.
    DimensionMismatch,
    /// An entity lacks a modality entirely (informational — real MMKGs
    /// are incomplete by nature; the auditor counts but never rejects).
    MissingModality,
}

impl DefectClass {
    /// Every class, in taxonomy order (report and counter ordering).
    pub const ALL: [DefectClass; 15] = [
        DefectClass::Io,
        DefectClass::Parse,
        DefectClass::Schema,
        DefectClass::Config,
        DefectClass::DanglingEndpoint,
        DefectClass::UnknownRelation,
        DefectClass::UnknownAttribute,
        DefectClass::SelfLoopTriple,
        DefectClass::DuplicateTriple,
        DefectClass::PairOutOfRange,
        DefectClass::DuplicatePair,
        DefectClass::NonFiniteFeature,
        DefectClass::ZeroNormFeature,
        DefectClass::DimensionMismatch,
        DefectClass::MissingModality,
    ];

    /// Stable kebab-case identifier (JSON reports, telemetry counters).
    pub fn name(&self) -> &'static str {
        match self {
            DefectClass::Io => "io",
            DefectClass::Parse => "parse",
            DefectClass::Schema => "schema",
            DefectClass::Config => "config",
            DefectClass::DanglingEndpoint => "dangling-endpoint",
            DefectClass::UnknownRelation => "unknown-relation",
            DefectClass::UnknownAttribute => "unknown-attribute",
            DefectClass::SelfLoopTriple => "self-loop-triple",
            DefectClass::DuplicateTriple => "duplicate-triple",
            DefectClass::PairOutOfRange => "pair-out-of-range",
            DefectClass::DuplicatePair => "duplicate-pair",
            DefectClass::NonFiniteFeature => "non-finite-feature",
            DefectClass::ZeroNormFeature => "zero-norm-feature",
            DefectClass::DimensionMismatch => "dimension-mismatch",
            DefectClass::MissingModality => "missing-modality",
        }
    }

    /// The telemetry counter name for this class (static, leak-free:
    /// the names are compile-time constants).
    pub fn counter_name(&self) -> &'static str {
        match self {
            DefectClass::Io => "audit.io",
            DefectClass::Parse => "audit.parse",
            DefectClass::Schema => "audit.schema",
            DefectClass::Config => "audit.config",
            DefectClass::DanglingEndpoint => "audit.dangling_endpoint",
            DefectClass::UnknownRelation => "audit.unknown_relation",
            DefectClass::UnknownAttribute => "audit.unknown_attribute",
            DefectClass::SelfLoopTriple => "audit.self_loop_triple",
            DefectClass::DuplicateTriple => "audit.duplicate_triple",
            DefectClass::PairOutOfRange => "audit.pair_out_of_range",
            DefectClass::DuplicatePair => "audit.duplicate_pair",
            DefectClass::NonFiniteFeature => "audit.non_finite_feature",
            DefectClass::ZeroNormFeature => "audit.zero_norm_feature",
            DefectClass::DimensionMismatch => "audit.dimension_mismatch",
            DefectClass::MissingModality => "audit.missing_modality",
        }
    }
}

impl fmt::Display for DefectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed data-plane error: defect class + location + context, with an
/// optional cause chain (each link is itself a `DesalignError`, so the
/// whole chain stays comparable and cloneable — external causes like
/// `io::Error` are captured as a leaf with their message preserved).
#[derive(Clone, Debug, PartialEq)]
pub struct DesalignError {
    /// What kind of defect this is.
    pub class: DefectClass,
    /// Where it was found (`source.rel_triples[42]`, a file path, a
    /// config field name…).
    pub location: String,
    /// Human-readable context: the offending values and the constraint
    /// they broke.
    pub context: String,
    /// The underlying error this one wraps, if any.
    pub cause: Option<Box<DesalignError>>,
}

impl DesalignError {
    /// A leaf error.
    pub fn new(class: DefectClass, location: impl Into<String>, context: impl Into<String>) -> Self {
        Self { class, location: location.into(), context: context.into(), cause: None }
    }

    /// Wraps `self` as the cause of a new, higher-level error.
    pub fn wrap(self, class: DefectClass, location: impl Into<String>, context: impl Into<String>) -> Self {
        Self { class, location: location.into(), context: context.into(), cause: Some(Box::new(self)) }
    }

    /// Captures an external error (any `Display`) as an [`DefectClass::Io`]
    /// leaf at `location`.
    pub fn io(location: impl Into<String>, err: impl fmt::Display) -> Self {
        Self::new(DefectClass::Io, location, err.to_string())
    }

    /// Captures an external error as a [`DefectClass::Parse`] leaf.
    pub fn parse(location: impl Into<String>, err: impl fmt::Display) -> Self {
        Self::new(DefectClass::Parse, location, err.to_string())
    }

    /// Captures an external error as a [`DefectClass::Schema`] leaf.
    pub fn schema(location: impl Into<String>, err: impl fmt::Display) -> Self {
        Self::new(DefectClass::Schema, location, err.to_string())
    }

    /// A [`DefectClass::Config`] leaf for an out-of-range setting.
    pub fn config(location: impl Into<String>, context: impl Into<String>) -> Self {
        Self::new(DefectClass::Config, location, context)
    }

    /// The innermost error of the cause chain (`self` when it is a leaf).
    pub fn root_cause(&self) -> &DesalignError {
        let mut e = self;
        while let Some(c) = &e.cause {
            e = c;
        }
        e
    }

    /// Iterates over the chain from `self` to the root cause.
    pub fn chain(&self) -> impl Iterator<Item = &DesalignError> {
        std::iter::successors(Some(self), |e| e.cause.as_deref())
    }
}

impl fmt::Display for DesalignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.class, self.location, self.context)?;
        if let Some(cause) = &self.cause {
            write!(f, " (caused by {cause})")?;
        }
        Ok(())
    }
}

impl Error for DesalignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.cause.as_deref().map(|c| c as &(dyn Error + 'static))
    }
}

impl From<std::io::Error> for DesalignError {
    fn from(e: std::io::Error) -> Self {
        DesalignError::io("io", e)
    }
}

impl From<crate::json::JsonError> for DesalignError {
    fn from(e: crate::json::JsonError) -> Self {
        // Offset 0 marks extraction (schema) errors; anything else is a
        // genuine parse failure with a byte position. A parse failure at
        // the very first byte is misclassified by this heuristic — when
        // the distinction matters, construct via `DesalignError::parse` /
        // `DesalignError::schema` at the call site instead.
        if e.offset == 0 {
            DesalignError::schema("json", e)
        } else {
            DesalignError::parse("json", e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_class_location_context() {
        let e = DesalignError::new(DefectClass::DuplicateTriple, "target.rel_triples[7]", "(1,0,2) repeats entry 3");
        let s = e.to_string();
        assert!(s.contains("duplicate-triple"), "{s}");
        assert!(s.contains("target.rel_triples[7]"), "{s}");
        assert!(s.contains("repeats entry 3"), "{s}");
    }

    #[test]
    fn wrap_builds_a_source_chain() {
        let leaf = DesalignError::io("ds.json", "No such file or directory");
        let top = leaf.clone().wrap(DefectClass::Schema, "load_dataset_json", "cannot load dataset");
        assert_eq!(top.root_cause(), &leaf);
        assert_eq!(top.chain().count(), 2);
        let src = Error::source(&top).expect("has a source");
        assert!(src.to_string().contains("No such file"));
        assert!(top.to_string().contains("caused by"));
    }

    #[test]
    fn json_error_conversion_distinguishes_parse_from_schema() {
        let parse = crate::json::Json::parse("{oops").unwrap_err();
        assert_eq!(DesalignError::from(parse).class, DefectClass::Parse);
        let schema = crate::json::JsonError::schema("missing field `name`");
        assert_eq!(DesalignError::from(schema).class, DefectClass::Schema);
    }

    #[test]
    fn class_names_are_unique_and_stable() {
        let mut names: Vec<&str> = DefectClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DefectClass::ALL.len(), "duplicate class names");
        let mut counters: Vec<&str> = DefectClass::ALL.iter().map(|c| c.counter_name()).collect();
        counters.sort_unstable();
        counters.dedup();
        assert_eq!(counters.len(), DefectClass::ALL.len(), "duplicate counter names");
    }
}
