//! A small JSON document model with a writer and a recursive-descent
//! parser.
//!
//! Design notes:
//!
//! - **Object key order is preserved** (objects are association lists, not
//!   maps), so written files are stable and diff-able.
//! - **Numbers are `f64`.** Every integer the workspace serializes (shapes,
//!   ids, counts) is far below 2^53, and `f32` payloads round-trip exactly
//!   through `f64`.
//! - **Non-finite floats round-trip.** Strict JSON has no encoding for
//!   `NaN`/`±∞`; this module writes the literals `NaN`, `Infinity`, and
//!   `-Infinity` and accepts them back (the same extension Python's `json`
//!   uses). Checkpoints must not silently corrupt a diverged training run's
//!   weights, so fidelity beats strictness here.
//! - **Errors carry byte offsets** so corrupt files point at the problem.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are represented exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with preserved key order.
    Object(Vec<(String, Json)>),
}

/// A parse or extraction failure, with the byte offset where parsing
/// failed (0 for extraction errors).
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where the error occurred.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        JsonError { message: message.into(), offset }
    }

    /// An extraction (not parse) error.
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError::new(message, 0)
    }
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

impl Json {
    /// Parses a JSON document; the whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new("trailing characters after JSON document", p.pos));
        }
        Ok(v)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// that fits.
    pub fn as_usize(&self) -> Option<usize> {
        match *self {
            Json::Num(n) if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 => Some(n as usize),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object's entry list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// First value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Typed extraction of a required object field.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        let v = self.get(key).ok_or_else(|| JsonError::schema(format!("missing field '{key}'")))?;
        T::from_json(v).map_err(|e| JsonError::schema(format!("field '{key}': {}", e.message)))
    }

    /// Serializes to a compact JSON string.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_nan() {
        out.push_str("NaN");
    } else if n == f64::INFINITY {
        out.push_str("Infinity");
    } else if n == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's shortest round-trip formatting; integral values print
        // without a fraction ("3"), which stays valid JSON.
        write!(out, "{n}").expect("string write");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("string write"),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Nesting beyond this depth is rejected (guards the recursive descent
/// against stack exhaustion on adversarial inputs).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep", self.pos));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'N') if self.eat_literal("NaN") => Ok(Json::Num(f64::NAN)),
            Some(b'I') if self.eat_literal("Infinity") => Ok(Json::Num(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Num(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(JsonError::new("unexpected character", self.pos)),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(JsonError::new("expected ',' or '}' in object", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::new("expected ',' or ']' in array", self.pos)),
            }
        }
    }

    fn boolean(&mut self) -> Result<Json, JsonError> {
        if self.eat_literal("true") {
            Ok(Json::Bool(true))
        } else if self.eat_literal("false") {
            Ok(Json::Bool(false))
        } else {
            Err(JsonError::new("invalid literal", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(JsonError::new("invalid number", start));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(JsonError::new("digits required after decimal point", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(JsonError::new("digits required in exponent", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError::new("number out of range", start))
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(JsonError::new("unescaped control character in string", self.pos)),
                None => return Err(JsonError::new("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| JsonError::new("unterminated escape", self.pos))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if !(self.eat_literal("\\u")) {
                        return Err(JsonError::new("unpaired surrogate", self.pos));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(JsonError::new("invalid low surrogate", self.pos));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(JsonError::new("unpaired low surrogate", self.pos));
                } else {
                    hi
                };
                out.push(char::from_u32(scalar).ok_or_else(|| JsonError::new("invalid code point", self.pos))?);
            }
            _ => return Err(JsonError::new("invalid escape", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| JsonError::new("truncated \\u escape", self.pos))?;
            let d = (b as char).to_digit(16).ok_or_else(|| JsonError::new("invalid hex digit", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] value by reference (so the [`crate::json!`] macro
/// can serialize borrowed fields without moving them).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )+};
}

impl_to_json_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Typed extraction from a [`Json`] value.
pub trait FromJson: Sized {
    /// Extracts `Self`, or explains what was wrong.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::schema("expected bool"))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::schema("expected number"))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_usize().ok_or_else(|| JsonError::schema("expected non-negative integer"))
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_usize().ok_or_else(|| JsonError::schema("expected non-negative integer"))? as u64)
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::schema("expected string"))
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_array().ok_or_else(|| JsonError::schema("expected array"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| JsonError::schema(format!("[{i}]: {}", e.message))))
            .collect()
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::schema("expected 2-element array")),
        }
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::schema("expected 3-element array")),
        }
    }
}

/// Serializes a `u64` as a decimal **string**, not a number.
///
/// [`Json::Num`] is an `f64`, which is exact only up to 2^53 — RNG states,
/// optimizer step counters, and checksums need all 64 bits, so the
/// checkpoint format carries them as strings. Inverse: [`u64_from_json`].
pub fn u64_to_json(x: u64) -> Json {
    Json::Str(x.to_string())
}

/// Parses a `u64` written with [`u64_to_json`] (also accepts small exact
/// integers written as numbers, for hand-edited files).
pub fn u64_from_json(v: &Json) -> Result<u64, JsonError> {
    match v {
        Json::Str(s) => s.parse::<u64>().map_err(|e| JsonError::schema(format!("bad u64 string '{s}': {e}"))),
        Json::Num(n) if *n >= 0.0 && *n <= 2f64.powi(53) && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(JsonError::schema("expected u64 (decimal string)")),
    }
}

/// Builds a [`Json`] value from a literal: `json!(null)`, an object
/// `json!({"key": expr, ...})` whose values are any `ToJson` expressions
/// (including nested `json!` calls), an array `json!([a, b, c])`, or a
/// bare `ToJson` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Json::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&($val))) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::ToJson::to_json(&($val)) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&($other)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_above_f64_precision() {
        for x in [0u64, 1, u64::MAX, (1 << 53) + 1, 0xDEAD_BEEF_CAFE_F00D] {
            let v = u64_to_json(x);
            assert_eq!(u64_from_json(&v).expect("round trip"), x);
            let reparsed = Json::parse(&v.to_string()).expect("parses");
            assert_eq!(u64_from_json(&reparsed).expect("parse round trip"), x);
        }
        assert_eq!(u64_from_json(&Json::Num(42.0)).expect("small number accepted"), 42);
        assert!(u64_from_json(&Json::Num(-1.0)).is_err());
        assert!(u64_from_json(&Json::Str("not a number".into())).is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3").unwrap(), Json::Num(3.0));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}, "x"], "c": {} }"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap(), &Json::Object(vec![]));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "\"unterminated", "01x", "nul", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t cr \r nul \u{0} bell \u{7} unicode é 中 emoji 🦀";
        let written = Json::Str(nasty.into()).to_string();
        assert_eq!(Json::parse(&written).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""\u0041\u00e9""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(Json::parse(r#""\ud83e\udd80""#).unwrap(), Json::Str("🦀".into()));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "unpaired surrogate accepted");
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.0f64, -0.0, 1.0, -1.5, 1e-300, 123456789.123456, f64::MIN_POSITIVE, 0.1f32 as f64] {
            let s = Json::Num(x).to_string();
            assert_eq!(Json::parse(&s).unwrap().as_f64().unwrap().to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for (v, s) in [(f64::INFINITY, "Infinity"), (f64::NEG_INFINITY, "-Infinity")] {
            assert_eq!(Json::Num(v).to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), Json::Num(v));
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "NaN");
        assert!(Json::parse("NaN").unwrap().as_f64().unwrap().is_nan());
        assert!(Json::parse("[NaN, -Infinity]").unwrap().as_array().unwrap()[0].as_f64().unwrap().is_nan());
    }

    #[test]
    fn macro_builds_objects_and_arrays() {
        let name = String::from("fb");
        let v = json!({
            "dataset": name, "h1": 0.5f32, "n": 12usize, "ok": true,
            "nested": json!([1, 2]), "missing": Option::<f32>::None,
        });
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("dataset").unwrap().as_str(), Some("fb"));
        assert_eq!(back.get("n").unwrap().as_usize(), Some(12));
        assert_eq!(back.get("nested").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(back.get("missing"), Some(&Json::Null));
        // `name` was serialized by reference and is still usable.
        assert_eq!(name, "fb");
    }

    #[test]
    fn typed_field_extraction() {
        let v = Json::parse(r#"{"rows": 2, "cols": 3, "data": [1.5, -2.0], "tag": "w", "pairs": [[1,2],[3,4]]}"#).unwrap();
        assert_eq!(v.field::<usize>("rows").unwrap(), 2);
        assert_eq!(v.field::<Vec<f32>>("data").unwrap(), vec![1.5, -2.0]);
        assert_eq!(v.field::<String>("tag").unwrap(), "w");
        assert_eq!(v.field::<Vec<(usize, usize)>>("pairs").unwrap(), vec![(1, 2), (3, 4)]);
        assert!(v.field::<usize>("nope").unwrap_err().message.contains("missing field"));
        assert!(v.field::<usize>("tag").unwrap_err().message.contains("expected"));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        assert_eq!(v.to_string(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn duplicate_keys_resolve_to_first() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
    }
}
