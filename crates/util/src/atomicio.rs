//! Crash-safe file I/O: a checksummed frame container plus
//! write-to-temp / fsync / atomic-rename persistence.
//!
//! This is the storage substrate of the training-checkpoint subsystem
//! (see `docs/RELIABILITY.md`). The guarantee it provides is **atomic
//! replacement**: a process killed at *any* byte boundary during
//! [`atomic_write`] leaves the destination path holding either the old
//! complete frame or the new complete frame — never a torn mixture — and
//! [`read_verified`] detects every torn, truncated, or bit-flipped file as
//! a clean `InvalidData` error instead of returning corrupt payload bytes.
//!
//! # Frame layout
//!
//! A frame is the payload followed by a fixed 24-byte footer:
//!
//! ```text
//! ┌────────────────────┬──────────────┬───────────────┬───────────────┐
//! │ payload (N bytes)  │ len: u64 LE  │ fnv64: u64 LE │ magic (8 B)   │
//! └────────────────────┴──────────────┴───────────────┴───────────────┘
//! ```
//!
//! - `len` is the payload length `N`; a file whose size is not exactly
//!   `N + 24` is rejected.
//! - `fnv64` is the FNV-1a 64-bit checksum of the payload bytes
//!   ([`checksum64`]).
//! - `magic` is the ASCII literal `DESACKPT` ([`FOOTER_MAGIC`]).
//!
//! The footer sits at the **end** of the file on purpose: any truncation —
//! the overwhelmingly common torn-write failure — destroys the magic, so
//! detection does not even need to hash the payload.
//!
//! # Write mechanics
//!
//! [`atomic_write`] writes the frame to a sibling temp file
//! ([`temp_path`]), `fsync`s it, atomically `rename`s it over the
//! destination, then best-effort `fsync`s the parent directory so the
//! rename itself is durable. POSIX `rename(2)` over an existing file is
//! atomic; a crash before the rename leaves only a stale `.tmp` (ignored
//! by readers), a crash after leaves the complete new frame.
//!
//! ```
//! use desalign_util::{atomic_write, read_verified};
//!
//! let path = std::env::temp_dir().join("desalign-atomicio-doc.bin");
//! atomic_write(&path, b"state v1").unwrap();
//! atomic_write(&path, b"state v2").unwrap(); // replaces atomically
//! assert_eq!(read_verified(&path).unwrap(), b"state v2");
//! std::fs::remove_file(&path).ok();
//! ```

use desalign_failpoint::{self as failpoint, FaultAction};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Evaluates a write-path failpoint. A [`FaultAction::Torn`] fault
/// persists only the first `n` bytes of `framed` to `tmp` (simulating a
/// process killed mid-write: the destination is untouched, the staging
/// file holds a torn prefix) and then fails; other faults map through
/// [`desalign_failpoint::fail_io`] semantics.
fn write_failpoint(site: &str, tmp: &Path, framed: &[u8]) -> io::Result<()> {
    match failpoint::evaluate(site) {
        None => Ok(()),
        Some(fault) => match fault.action {
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::Torn(n) => {
                let cut = n.min(framed.len());
                let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(tmp)?;
                f.write_all(&framed[..cut])?;
                f.sync_all()?;
                Err(fault.to_io_error(site))
            }
            FaultAction::Err(_) => Err(fault.to_io_error(site)),
        },
    }
}

/// ASCII magic `DESACKPT` closing every frame.
pub const FOOTER_MAGIC: [u8; 8] = *b"DESACKPT";

/// Total footer size in bytes: `len (8) + checksum (8) + magic (8)`.
pub const FOOTER_LEN: usize = 24;

/// FNV-1a 64-bit checksum over a byte slice — the frame integrity hash.
///
/// Not cryptographic; it guards against torn writes and storage bit rot,
/// not adversaries.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in the checksummed frame (payload + 24-byte footer).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FOOTER_LEN);
    out.extend_from_slice(payload);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Validates a frame and returns the payload slice.
///
/// Errors with `InvalidData` when the frame is shorter than a footer, the
/// magic is wrong (truncation), the recorded length disagrees with the
/// byte count, or the checksum does not match.
pub fn unframe(bytes: &[u8]) -> io::Result<&[u8]> {
    if bytes.len() < FOOTER_LEN {
        return Err(invalid(format!("frame too short: {} bytes < {FOOTER_LEN}-byte footer", bytes.len())));
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if footer[16..24] != FOOTER_MAGIC {
        return Err(invalid("bad frame magic (file truncated or not a checkpoint)"));
    }
    let len = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes")) as usize;
    if len != body.len() {
        return Err(invalid(format!("frame length mismatch: footer says {len} payload bytes, file holds {}", body.len())));
    }
    let stored = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
    let actual = checksum64(body);
    if stored != actual {
        return Err(invalid(format!("frame checksum mismatch: stored {stored:016x}, computed {actual:016x}")));
    }
    Ok(body)
}

/// The sibling temp path [`atomic_write`] stages into: `<path>.tmp`.
///
/// Deterministic so a crashed writer's stale temp file is simply
/// overwritten by the next write — readers never look at it.
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with the framed `payload`.
///
/// Sequence: write the frame to [`temp_path`], `fsync` the file, `rename`
/// it over `path`, then best-effort `fsync` the parent directory. A kill
/// at any point leaves `path` holding either its previous contents or the
/// complete new frame.
pub fn atomic_write(path: &Path, payload: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    let framed = frame(payload);
    // Failpoint `atomicio.write`: `torn:<n>` replays a kill mid-write
    // (torn staging file, destination untouched); `err` fails before any
    // byte is staged. No-op without an active schedule.
    write_failpoint("atomicio.write", &tmp, &framed)?;
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself: fsync the directory entry.
    // Best-effort — some platforms refuse to open directories.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(if dir.as_os_str().is_empty() { Path::new(".") } else { dir }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Streaming counterpart of [`atomic_write`]: payload bytes arrive in any
/// number of [`write`](FrameWriter::write) calls, the FNV-64 checksum and
/// payload length accumulate as they stream, and [`finish`](FrameWriter::finish)
/// appends the 24-byte footer, `fsync`s, and atomically renames the staged
/// temp file over the destination.
///
/// Use this when the payload is too large (or too awkward) to build in one
/// contiguous buffer — e.g. the sharded dataset writer, which emits a shard
/// section by section. The resulting file is byte-identical to
/// `atomic_write(path, &all_bytes)` and verifies with [`read_verified`].
/// Dropping a `FrameWriter` without calling `finish` leaves only the stale
/// `.tmp` file, which readers never look at.
///
/// ```
/// use desalign_util::{read_verified, FrameWriter};
///
/// let path = std::env::temp_dir().join("desalign-framewriter-doc.bin");
/// let mut w = FrameWriter::create(&path).unwrap();
/// w.write(b"streamed in ").unwrap();
/// w.write(b"two chunks").unwrap();
/// let checksum = w.finish().unwrap();
/// assert_eq!(read_verified(&path).unwrap(), b"streamed in two chunks");
/// assert_eq!(checksum, desalign_util::checksum64(b"streamed in two chunks"));
/// std::fs::remove_file(&path).ok();
/// ```
pub struct FrameWriter {
    path: PathBuf,
    tmp: PathBuf,
    file: io::BufWriter<File>,
    len: u64,
    hash: u64,
}

impl FrameWriter {
    /// Opens the staging temp file for `path` and starts an empty frame.
    pub fn create(path: &Path) -> io::Result<Self> {
        let tmp = temp_path(path);
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        Ok(Self {
            path: path.to_path_buf(),
            tmp,
            file: io::BufWriter::new(file),
            len: 0,
            hash: 0xcbf2_9ce4_8422_2325,
        })
    }

    /// Appends payload bytes, folding them into the running checksum.
    ///
    /// Failpoint `atomicio.frame.write`: `torn:<n>` persists only the
    /// first `n` bytes of this chunk before failing (the destination file
    /// is never touched — only the staging temp file tears).
    pub fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(fault) = failpoint::evaluate("atomicio.frame.write") {
            match fault.action {
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Torn(n) => {
                    let cut = n.min(bytes.len());
                    self.file.write_all(&bytes[..cut])?;
                    let _ = self.file.flush();
                    return Err(fault.to_io_error("atomicio.frame.write"));
                }
                FaultAction::Err(_) => return Err(fault.to_io_error("atomicio.frame.write")),
            }
        }
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.len += bytes.len() as u64;
        self.file.write_all(bytes)
    }

    /// Payload bytes written so far.
    pub fn payload_len(&self) -> u64 {
        self.len
    }

    /// Appends the footer, `fsync`s, and renames the temp file over the
    /// destination. Returns the payload checksum.
    pub fn finish(self) -> io::Result<u64> {
        let Self { path, tmp, mut file, len, hash } = self;
        // Failpoint `atomicio.frame.finish`: fail before the footer +
        // rename make the new frame visible — the destination keeps its
        // previous generation, exactly like a kill at this instant.
        desalign_failpoint::fail_io("atomicio.frame.finish")?;
        file.write_all(&len.to_le_bytes())?;
        file.write_all(&hash.to_le_bytes())?;
        file.write_all(&FOOTER_MAGIC)?;
        file.flush()?;
        file.get_ref().sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(if dir.as_os_str().is_empty() { Path::new(".") } else { dir }) {
                let _ = d.sync_all();
            }
        }
        Ok(hash)
    }
}

/// Reads `path` and returns the verified payload.
///
/// I/O errors pass through; torn/truncated/corrupt frames become
/// `InvalidData` errors (see [`unframe`]). Never panics and never returns
/// unverified bytes.
pub fn read_verified(path: &Path) -> io::Result<Vec<u8>> {
    // Failpoint `atomicio.read`: injected flaky-disk reads (err/notfound/
    // timeout/delay). No-op without an active schedule.
    desalign_failpoint::fail_io("atomicio.read")?;
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let payload_len = unframe(&bytes)?.len();
    bytes.truncate(payload_len);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("desalign-atomicio-tests");
        fs::create_dir_all(&dir).expect("tempdir");
        dir.join(name)
    }

    #[test]
    fn frame_round_trips() {
        for payload in [&b""[..], b"x", b"hello checkpoint", &[0u8; 1000][..]] {
            let framed = frame(payload);
            assert_eq!(framed.len(), payload.len() + FOOTER_LEN);
            assert_eq!(unframe(&framed).expect("verifies"), payload);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_detected() {
        let payload = b"0123456789abcdef";
        let framed = frame(payload);
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err(), "truncation to {cut} bytes accepted");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(b"sensitive payload");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupt = framed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(unframe(&corrupt).is_err(), "flip at byte {byte} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut framed = frame(b"payload");
        framed.extend_from_slice(b"junk");
        assert!(unframe(&framed).is_err());
    }

    #[test]
    fn atomic_write_then_read_verified() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("write-read.bin");
        atomic_write(&path, b"generation 1").expect("write 1");
        assert_eq!(read_verified(&path).expect("read 1"), b"generation 1");
        atomic_write(&path, b"generation 2 is longer").expect("write 2");
        assert_eq!(read_verified(&path).expect("read 2"), b"generation 2 is longer");
        assert!(!temp_path(&path).exists(), "temp file left behind after successful write");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_temp_file_is_ignored_and_overwritten() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("stale-tmp.bin");
        atomic_write(&path, b"good state").expect("write");
        // A previous writer died mid-write: partial frame at the temp path.
        fs::write(temp_path(&path), &frame(b"newer state")[..5]).expect("plant stale tmp");
        assert_eq!(read_verified(&path).expect("reader ignores tmp"), b"good state");
        atomic_write(&path, b"next state").expect("overwrites stale tmp");
        assert_eq!(read_verified(&path).expect("read"), b"next state");
        fs::remove_file(&path).ok();
        fs::remove_file(temp_path(&path)).ok();
    }

    #[test]
    fn torn_final_file_errors_cleanly() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("torn.bin");
        atomic_write(&path, b"complete").expect("write");
        let full = fs::read(&path).expect("read raw");
        for cut in [0usize, 1, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).expect("truncate");
            let err = read_verified(&path).expect_err("torn file accepted");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_not_found() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let err = read_verified(&tmp("never-written.bin")).expect_err("missing file");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn frame_writer_matches_atomic_write_byte_for_byte() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let a = tmp("fw-a.bin");
        let b = tmp("fw-b.bin");
        let payload = b"the same payload, two write paths";
        atomic_write(&a, payload).expect("atomic_write");
        let mut w = FrameWriter::create(&b).expect("create");
        for chunk in payload.chunks(7) {
            w.write(chunk).expect("write chunk");
        }
        assert_eq!(w.payload_len(), payload.len() as u64);
        let checksum = w.finish().expect("finish");
        assert_eq!(checksum, checksum64(payload));
        assert_eq!(fs::read(&a).expect("read a"), fs::read(&b).expect("read b"));
        assert!(!temp_path(&b).exists(), "temp file left behind");
        fs::remove_file(&a).ok();
        fs::remove_file(&b).ok();
    }

    #[test]
    fn frame_writer_empty_payload_round_trips() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let p = tmp("fw-empty.bin");
        let w = FrameWriter::create(&p).expect("create");
        w.finish().expect("finish");
        assert_eq!(read_verified(&p).expect("read"), b"");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn unfinished_frame_writer_leaves_destination_untouched() {
        // Serialized: failpoint tests install process-global schedules
        // on the sites these helpers hit.
        let _guard = desalign_failpoint::exclusive();
        let p = tmp("fw-dropped.bin");
        atomic_write(&p, b"old state").expect("seed");
        {
            let mut w = FrameWriter::create(&p).expect("create");
            w.write(b"never finished").expect("write");
            // dropped without finish()
        }
        assert_eq!(read_verified(&p).expect("read"), b"old state");
        fs::remove_file(&p).ok();
        fs::remove_file(temp_path(&p)).ok();
    }

    #[test]
    fn torn_write_failpoint_preserves_the_old_generation() {
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("fp-torn.bin");
        atomic_write(&path, b"generation 1").expect("seed write");
        // Tear the next write at several byte budgets: the destination
        // must keep generation 1 every time, and the torn staging file
        // must never verify.
        for cut in [0usize, 1, 5, 20] {
            desalign_failpoint::install(&format!("atomicio.write=torn:{cut}@1")).expect("install");
            let err = atomic_write(&path, b"generation 2 (torn)").expect_err("torn write must fail");
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
            assert_eq!(read_verified(&path).expect("old generation intact"), b"generation 1");
            let staged = fs::read(temp_path(&path)).expect("torn staging file exists");
            assert!(unframe(&staged).is_err(), "torn prefix of {cut} bytes verified");
        }
        desalign_failpoint::clear();
        // With the schedule gone the same write succeeds and replaces.
        atomic_write(&path, b"generation 2").expect("clean write");
        assert_eq!(read_verified(&path).expect("read"), b"generation 2");
        fs::remove_file(&path).ok();
        fs::remove_file(temp_path(&path)).ok();
    }

    #[test]
    fn frame_writer_failpoints_keep_the_destination_untouched() {
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("fp-fw.bin");
        atomic_write(&path, b"old state").expect("seed");
        desalign_failpoint::install("atomicio.frame.write=torn:3@2").expect("install");
        let mut w = FrameWriter::create(&path).expect("create");
        w.write(b"chunk one ").expect("hit 1 passes");
        let err = w.write(b"chunk two").expect_err("hit 2 tears");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        drop(w);
        assert_eq!(read_verified(&path).expect("read"), b"old state");

        desalign_failpoint::install("atomicio.frame.finish=err@1").expect("install");
        let mut w = FrameWriter::create(&path).expect("create");
        w.write(b"never lands").expect("write");
        assert!(w.finish().is_err(), "finish failpoint must fire");
        assert_eq!(read_verified(&path).expect("read"), b"old state");
        desalign_failpoint::clear();
        fs::remove_file(&path).ok();
        fs::remove_file(temp_path(&path)).ok();
    }

    #[test]
    fn read_failpoint_injects_flaky_disk_errors() {
        let _guard = desalign_failpoint::exclusive();
        let path = tmp("fp-read.bin");
        atomic_write(&path, b"payload").expect("write");
        desalign_failpoint::install("atomicio.read=err@2").expect("install");
        assert_eq!(read_verified(&path).expect("hit 1 passes"), b"payload");
        assert!(read_verified(&path).is_err(), "hit 2 must fail");
        assert_eq!(read_verified(&path).expect("hit 3 passes"), b"payload");
        desalign_failpoint::clear();
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a 64 reference: empty input hashes to the offset basis.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
    }
}
