//! Quickstart: generate a benchmark split, train DESAlign, evaluate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use desalign::core::{DesalignConfig, DesalignModel};
use desalign::mmkg::{DatasetSpec, SynthConfig};

fn main() {
    // 1. A monolingual FB15K–DB15K-like split at laptop scale: 300 entities
    //    on the larger side, 20 % seed alignments.
    let dataset = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(300).with_seed_ratio(0.2).generate(42);
    println!(
        "dataset {}: {} + {} entities, {} seed / {} test alignments",
        dataset.name,
        dataset.source.num_entities,
        dataset.target.num_entities,
        dataset.train_pairs.len(),
        dataset.test_pairs.len()
    );

    // 2. Train with the laptop-scale profile (d = 64, 60 epochs).
    let cfg = DesalignConfig::fast();
    let mut model = DesalignModel::new(cfg, &dataset, 7);
    let report = model.fit(&dataset);
    println!(
        "trained {} epochs in {:.1}s; loss {:.3} → {:.3}",
        report.epochs_run,
        report.seconds,
        report.loss_history.first().map_or(f32::NAN, |b| b.total),
        report.final_loss.total
    );

    // 3. Evaluate H@k / MRR on the held-out alignments.
    let metrics = model.evaluate(&dataset);
    println!(
        "H@1 {:.1}%  H@10 {:.1}%  MRR {:.1}%  over {} queries",
        metrics.hits_at_1 * 100.0,
        metrics.hits_at_10 * 100.0,
        metrics.mrr * 100.0,
        metrics.num_queries
    );

    // 4. Inspect the Dirichlet-energy diagnostics (Proposition 2).
    let diag = model.energy_diagnostics();
    if let Some(last) = diag.traces.last() {
        println!("final-layer / input-layer Dirichlet energy ratio: {:.3} (collapse ⇒ over-smoothing)", last.smoothing_ratio());
    }
    for (letter, (smin, smax)) in diag.fc_singular_values {
        println!("FC_{letter} singular values: [{smin:.3}, {smax:.3}]");
    }
}
