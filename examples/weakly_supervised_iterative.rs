//! Weak supervision + the iterative (bootstrapping) strategy.
//!
//! Only 5 % of the gold alignments serve as seeds; the iterative strategy
//! mines mutual-nearest-neighbour pseudo pairs and retrains, recovering a
//! large part of the gap to the fully supervised model — the Figure 3
//! (right) + Table IV "Iterative" story.
//!
//! ```sh
//! cargo run --release --example weakly_supervised_iterative
//! ```

use desalign::core::{iterative_fit, DesalignConfig, IterativeConfig};
use desalign::mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let dataset = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(300).with_seed_ratio(0.05).generate(23);
    println!(
        "split {} — only {} seeds for {} test alignments",
        dataset.name,
        dataset.train_pairs.len(),
        dataset.test_pairs.len()
    );

    let mut cfg = DesalignConfig::fast();
    cfg.epochs = 50;
    let it_cfg = IterativeConfig { rounds: 2, max_new_pairs: 0, min_score: 0.45 };
    let (_, report) = iterative_fit(cfg, it_cfg, &dataset, 31);

    println!("\n{:>6} {:>13} {:>15} {:>6} {:>6}", "round", "pseudo pairs", "pseudo correct", "H@1", "MRR");
    for r in &report.rounds {
        println!(
            "{:>6} {:>13} {:>15} {:>6.1} {:>6.1}",
            r.round,
            r.pseudo_pairs,
            r.pseudo_correct,
            r.metrics.hits_at_1 * 100.0,
            r.metrics.mrr * 100.0
        );
    }
    let base = report.base_metrics();
    let fin = report.final_metrics();
    println!(
        "\nbootstrapping gained {:+.1} H@1 / {:+.1} MRR over the base fit",
        (fin.hits_at_1 - base.hits_at_1) * 100.0,
        (fin.mrr - base.mrr) * 100.0
    );
}
