//! Robustness under missing modalities — the paper's headline scenario.
//!
//! Sweeps the image ratio `R_img` on a bilingual split and compares
//! DESAlign against MEAformer (same encoder, no energy constraint, no
//! Semantic Propagation), reproducing the Table III story in miniature.
//!
//! ```sh
//! cargo run --release --example robustness_missing_modality
//! ```

use desalign::baselines::{Aligner, DesalignAligner, MeaformerAligner};
use desalign::core::DesalignConfig;
use desalign::mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let mut cfg = DesalignConfig::fast();
    cfg.epochs = 40;
    println!("{:>7} | {:>18} | {:>18}", "R_img", "MEAformer H@1/MRR", "DESAlign H@1/MRR");
    for r_img in [0.1f32, 0.3, 0.6] {
        let dataset = SynthConfig::preset(DatasetSpec::Dbp15kFrEn)
            .scaled(250)
            .with_image_ratio(r_img)
            .generate(11);

        let mut meaformer = MeaformerAligner::new(cfg.clone(), &dataset, 3);
        meaformer.fit(&dataset);
        let m_base = meaformer.evaluate(&dataset);

        let mut desalign = DesalignAligner::new(cfg.clone(), &dataset, 3);
        desalign.fit(&dataset);
        let m_ours = desalign.evaluate(&dataset);

        println!(
            "{:>6.0}% | {:>8.1} / {:>7.1} | {:>8.1} / {:>7.1}",
            r_img * 100.0,
            m_base.hits_at_1 * 100.0,
            m_base.mrr * 100.0,
            m_ours.hits_at_1 * 100.0,
            m_ours.mrr * 100.0
        );
    }
    println!("\nDESAlign's margin should be largest at the low-coverage end — the");
    println!("noise-filled features MEAformer relies on are replaced by Semantic");
    println!("Propagation's neighbour interpolation.");
}
