//! Semantic Propagation as a training-free plug-in (§V-E: "it seamlessly
//! integrates as a plugin for enhancing other MMEA models").
//!
//! Trains a plain EVA baseline, then re-scores its similarity matrix with
//! the per-modality propagation operator — no retraining, just one sparse
//! product per round — and shows the metric delta.
//!
//! ```sh
//! cargo run --release --example sp_plugin
//! ```

use desalign::baselines::{Aligner, EvaAligner};
use desalign::eval::evaluate_ranking;
use desalign::graph::{propagate_features, PropagationConfig};
use desalign::mmkg::{DatasetSpec, FeatureDims, ModalFeatures, SynthConfig};
use desalign::tensor::Matrix;

fn main() {
    let dataset = SynthConfig::preset(DatasetSpec::Dbp15kJaEn)
        .scaled(250)
        .with_image_ratio(0.25)
        .generate(5);
    println!("split: {}", dataset.name);

    // 1. Train the baseline as-is.
    let mut eva = EvaAligner::with_profile(64, 60, &dataset, 9);
    eva.fit(&dataset);
    let base_sim = eva.similarity();
    let base = evaluate_ranking(&base_sim, &dataset.test_pairs);
    println!("EVA baseline:   H@1 {:5.1}  MRR {:5.1}", base.hits_at_1 * 100.0, base.mrr * 100.0);

    // 2. Plug-in SP: smooth each side's *similarity rows* through its graph.
    //    Ω' rows live on source entities, columns on target entities; one
    //    propagation step over each graph mixes neighbour evidence exactly
    //    like Eq. 22 (x ← Ãx with boundary reset on consistent entities).
    let dims = FeatureDims::default();
    let feats_s = ModalFeatures::build(&dataset.source, &dims);
    let feats_t = ModalFeatures::build(&dataset.target, &dims);
    let known_s: Vec<bool> = feats_s.has_visual.iter().zip(&feats_s.has_attribute).map(|(&v, &a)| v && a).collect();
    let known_t: Vec<bool> = feats_t.has_visual.iter().zip(&feats_t.has_attribute).map(|(&v, &a)| v && a).collect();
    let adj_s = dataset.source.graph().normalized_adjacency(true);
    let adj_t = dataset.target.graph().normalized_adjacency(true);
    let cfg = PropagationConfig { iterations: 1, step: 1.0, reset_known: true };

    // Propagate over source rows, then over target rows (via the transpose).
    let omega: Matrix = base_sim.scores().clone();
    let rows_smoothed = propagate_features(&adj_s, &omega, &known_s, &cfg).pop().expect("state");
    let omega_t = rows_smoothed.transpose();
    let cols_smoothed = propagate_features(&adj_t, &omega_t, &known_t, &cfg).pop().expect("state");
    let enhanced = cols_smoothed.transpose();

    // 3. Average the raw and propagated scores (Algorithm 1, line 15).
    let blended = omega.add(&enhanced).scale(0.5);
    let plugin = evaluate_ranking(&desalign::eval::SimilarityMatrix::new(blended), &dataset.test_pairs);
    println!("EVA + SP plug-in: H@1 {:5.1}  MRR {:5.1}", plugin.hits_at_1 * 100.0, plugin.mrr * 100.0);
    println!(
        "delta: H@1 {:+.1}, MRR {:+.1} — with zero retraining.",
        (plugin.hits_at_1 - base.hits_at_1) * 100.0,
        (plugin.mrr - base.mrr) * 100.0
    );
}
