//! `desalign-cli` — generate benchmark splits, train, evaluate, and save
//! model checkpoints from the command line.
//!
//! ```text
//! desalign-cli generate --preset fbdb15k --scale 300 --seed 42 --out split.json
//! desalign-cli train    --data split.json --epochs 60 --save model.json
//! desalign-cli evaluate --data split.json --load model.json
//! desalign-cli presets
//! ```
//!
//! The streaming data plane (`docs/DATA_FORMAT.md`) is driven by three
//! more commands:
//!
//! ```text
//! desalign-cli shard        --data split.json --out shards/ [--shard-entities N]
//! desalign-cli shard        --preset fbdb15k --scale 300 --out shards/   # streamed, out of core
//! desalign-cli shard-audit  --dir shards/ [--policy strict|repair]
//! desalign-cli shard-export --dir shards/ --out split.json
//! ```
//!
//! Flags are parsed by hand (no CLI dependency); unknown flags abort with
//! usage help.

use desalign::core::{DesalignConfig, DesalignModel};
use desalign::mmkg::{
    load_dataset_json, read_manifest, save_dataset_json, write_shards, AuditPolicy, DatasetSpec, StreamingAuditor,
    SynthConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing command");
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "presets" => cmd_presets(),
        "shard" => cmd_shard(&flags),
        "shard-audit" => cmd_shard_audit(&flags),
        "shard-export" => cmd_shard_export(&flags),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => usage(&e),
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{name}")),
            None => Ok(default),
        }
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let name = k.strip_prefix("--").ok_or_else(|| format!("expected a --flag, got '{k}'"))?;
        let v = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.push((name.to_string(), v.clone()));
    }
    Ok(Flags(out))
}

fn preset_by_name(name: &str) -> Result<DatasetSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "fbdb15k" => Ok(DatasetSpec::FbDb15k),
        "fbyg15k" => Ok(DatasetSpec::FbYg15k),
        "dbp15k-zh-en" | "zh-en" => Ok(DatasetSpec::Dbp15kZhEn),
        "dbp15k-ja-en" | "ja-en" => Ok(DatasetSpec::Dbp15kJaEn),
        "dbp15k-fr-en" | "fr-en" => Ok(DatasetSpec::Dbp15kFrEn),
        other => Err(format!("unknown preset '{other}' (see `desalign-cli presets`)")),
    }
}

fn cmd_presets() -> Result<(), String> {
    println!("available presets (Table I analogues):");
    for spec in DatasetSpec::ALL {
        println!(
            "  {:<14} {} family",
            spec.name().to_ascii_lowercase().replace("15k_", "15k-"),
            if spec.is_bilingual() { "bilingual" } else { "monolingual" }
        );
    }
    println!("names accepted by --preset: fbdb15k, fbyg15k, zh-en, ja-en, fr-en");
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let spec = preset_by_name(flags.require("preset")?)?;
    let scale: usize = flags.parse("scale", 300)?;
    let seed: u64 = flags.parse("seed", 42)?;
    let out = PathBuf::from(flags.require("out")?);
    let mut cfg = SynthConfig::preset(spec).scaled(scale);
    if let Some(r) = flags.get("seed-ratio") {
        cfg = cfg.with_seed_ratio(r.parse().map_err(|_| "invalid --seed-ratio")?);
    }
    if let Some(r) = flags.get("image-ratio") {
        cfg = cfg.with_image_ratio(r.parse().map_err(|_| "invalid --image-ratio")?);
    }
    if let Some(r) = flags.get("text-ratio") {
        cfg = cfg.with_text_ratio(r.parse().map_err(|_| "invalid --text-ratio")?);
    }
    let ds = cfg.generate(seed);
    save_dataset_json(&ds, &out).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} — {} + {} entities, {} seed / {} test pairs",
        out.display(),
        ds.source.num_entities,
        ds.target.num_entities,
        ds.train_pairs.len(),
        ds.test_pairs.len()
    );
    Ok(())
}

fn model_config(flags: &Flags) -> Result<DesalignConfig, String> {
    let mut cfg = DesalignConfig::fast();
    cfg.epochs = flags.parse("epochs", cfg.epochs)?;
    cfg.hidden_dim = flags.parse("dim", cfg.hidden_dim)?;
    cfg.sp_iterations = flags.parse("sp-iterations", cfg.sp_iterations)?;
    cfg.lr = flags.parse("lr", cfg.lr)?;
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let data = PathBuf::from(flags.require("data")?);
    let ds = load_dataset_json(&data).map_err(|e| format!("cannot load {}: {e}", data.display()))?;
    let cfg = model_config(flags)?;
    let seed: u64 = flags.parse("model-seed", 7)?;
    let mut model = DesalignModel::new(cfg, &ds, seed);
    let report = model.fit(&ds);
    println!(
        "trained {} epochs in {:.1}s (final loss {:.4})",
        report.epochs_run, report.seconds, report.final_loss.total
    );
    let metrics = model.evaluate(&ds);
    println!(
        "H@1 {:.1}%  H@10 {:.1}%  MRR {:.1}%  ({} queries)",
        metrics.hits_at_1 * 100.0,
        metrics.hits_at_10 * 100.0,
        metrics.mrr * 100.0,
        metrics.num_queries
    );
    if let Some(save) = flags.get("save") {
        let path = PathBuf::from(save);
        model.save_weights(&path).map_err(|e| format!("cannot save {}: {e}", path.display()))?;
        println!("checkpoint written to {}", path.display());
    }
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let data = PathBuf::from(flags.require("data")?);
    let ds = load_dataset_json(&data).map_err(|e| format!("cannot load {}: {e}", data.display()))?;
    let cfg = model_config(flags)?;
    let seed: u64 = flags.parse("model-seed", 7)?;
    let mut model = DesalignModel::new(cfg, &ds, seed);
    if let Some(load) = flags.get("load") {
        let path = PathBuf::from(load);
        model.load_weights(&path).map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()))?;
        println!("loaded checkpoint {}", path.display());
    } else {
        println!("note: evaluating an untrained model (pass --load <ckpt>)");
    }
    let metrics = model.evaluate(&ds);
    println!(
        "H@1 {:.1}%  H@10 {:.1}%  MRR {:.1}%  ({} queries)",
        metrics.hits_at_1 * 100.0,
        metrics.hits_at_10 * 100.0,
        metrics.mrr * 100.0,
        metrics.num_queries
    );
    Ok(())
}

fn cmd_shard(flags: &Flags) -> Result<(), String> {
    let out = PathBuf::from(flags.require("out")?);
    let shard_entities: usize = flags.parse("shard-entities", 500)?;
    let manifest = if let Some(data) = flags.get("data") {
        // Convert an existing JSON split into the sharded layout.
        let data = PathBuf::from(data);
        let ds = load_dataset_json(&data).map_err(|e| format!("cannot load {}: {e}", data.display()))?;
        write_shards(&ds, &out, shard_entities).map_err(|e| format!("cannot shard {}: {e}", out.display()))?
    } else {
        // Generate straight to shards, never materializing the full KG.
        let spec = preset_by_name(flags.require("preset")?)?;
        let scale: usize = flags.parse("scale", 300)?;
        let seed: u64 = flags.parse("seed", 42)?;
        let cfg = SynthConfig::preset(spec).scaled(scale);
        cfg.generate_sharded(seed, &out, shard_entities)
            .map_err(|e| format!("cannot generate shards in {}: {e}", out.display()))?
    };
    println!(
        "wrote {} shard(s) to {} — {} + {} entities, fingerprint {:016x}",
        manifest.shards.len(),
        out.display(),
        manifest.source.num_entities,
        manifest.target.num_entities,
        manifest.dataset_fingerprint
    );
    Ok(())
}

fn cmd_shard_audit(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flags.require("dir")?);
    let policy = match flags.get("policy").unwrap_or("strict") {
        "strict" => AuditPolicy::Strict,
        "repair" => AuditPolicy::Repair,
        other => return Err(format!("unknown --policy '{other}' (strict|repair)")),
    };
    let report = StreamingAuditor::new(policy)
        .audit_dir(&dir)
        .map_err(|e| format!("audit of {} failed: {e}", dir.display()))?;
    println!("{}", report.audit.summary());
    println!(
        "shards: {} read, {} rewritten, {} quarantined; peak payload {} B; fingerprint {:016x}",
        report.shards_read,
        report.shards_rewritten,
        report.quarantined.len(),
        report.peak_payload_bytes,
        report.fingerprint
    );
    if !report.quarantined.is_empty() {
        println!("quarantined shard indices: {:?}", report.quarantined);
    }
    Ok(())
}

fn cmd_shard_export(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flags.require("dir")?);
    let out = PathBuf::from(flags.require("out")?);
    let manifest = read_manifest(&dir).map_err(|e| format!("cannot read manifest in {}: {e}", dir.display()))?;
    let ds = manifest.to_dataset(&dir).map_err(|e| format!("cannot assemble {}: {e}", dir.display()))?;
    save_dataset_json(&ds, &out).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "assembled {} shard(s) from {} into {} — {} + {} entities",
        manifest.shards.len(),
        dir.display(),
        out.display(),
        ds.source.num_entities,
        ds.target.num_entities
    );
    Ok(())
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}\n");
    eprintln!("usage:");
    eprintln!("  desalign-cli presets");
    eprintln!("  desalign-cli generate --preset <name> --out <file> [--scale N] [--seed N]");
    eprintln!("                        [--seed-ratio R] [--image-ratio R] [--text-ratio R]");
    eprintln!("  desalign-cli train    --data <file> [--epochs N] [--dim N] [--lr F]");
    eprintln!("                        [--sp-iterations N] [--model-seed N] [--save <ckpt>]");
    eprintln!("  desalign-cli evaluate --data <file> --load <ckpt> [--dim N] [--model-seed N]");
    eprintln!("  desalign-cli shard    --data <file> --out <dir> [--shard-entities N]");
    eprintln!("  desalign-cli shard    --preset <name> --out <dir> [--scale N] [--seed N]");
    eprintln!("                        [--shard-entities N]   (streamed, out of core)");
    eprintln!("  desalign-cli shard-audit  --dir <dir> [--policy strict|repair]");
    eprintln!("  desalign-cli shard-export --dir <dir> --out <file>");
    ExitCode::FAILURE
}
