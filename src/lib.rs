//! # DESAlign
//!
//! A full-stack Rust reproduction of **"Towards Semantic Consistency:
//! Dirichlet Energy Driven Robust Multi-Modal Entity Alignment"**
//! (Wang et al., ICDE 2024).
//!
//! This facade crate re-exports every workspace crate under one roof so
//! examples and downstream users can depend on a single package:
//!
//! - [`tensor`] — dense `f32` matrices and numeric kernels;
//! - [`graph`] — CSR sparse matrices, Laplacians, Dirichlet energy, feature
//!   propagation;
//! - [`autodiff`] — tape-based reverse-mode automatic differentiation;
//! - [`nn`] — GAT, cross-modal attention, AdamW, LR schedules;
//! - [`mmkg`] — multi-modal knowledge graphs and the synthetic benchmark
//!   generator;
//! - [`eval`] — H@k / MRR metrics, similarity, pair mining;
//! - [`core`] — the DESAlign model itself (multi-modal semantic learning +
//!   semantic propagation);
//! - [`baselines`] — TransE, GCN-align, EVA, MCLEA, MEAformer;
//! - [`serve`] — alignment-as-a-service: the std-only HTTP inference
//!   server over a checkpointed model, with request batching and a
//!   featurization cache (contract in `docs/SERVING.md`);
//! - [`util`] — zero-dependency JSON serialization;
//! - [`parallel`] — deterministic thread pool behind every hot kernel
//!   (`DESALIGN_THREADS` selects the thread count; results are bit-identical
//!   at any setting);
//! - [`telemetry`] — span timers, counters, and the JSONL training-metrics
//!   sink (`DESALIGN_TELEMETRY=1` turns collection on; results stay
//!   bit-identical either way — see `docs/OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use desalign::mmkg::{DatasetSpec, SynthConfig};
//! use desalign::core::{DesalignConfig, DesalignModel};
//!
//! // Generate a small monolingual benchmark pair with 40% of images missing.
//! let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(200).with_image_ratio(0.6);
//! let dataset = cfg.generate(42);
//!
//! // Train DESAlign and evaluate H@k / MRR on the held-out alignments.
//! let mut model_cfg = DesalignConfig::fast();
//! model_cfg.epochs = 5; // keep the doctest quick
//! let mut model = DesalignModel::new(model_cfg, &dataset, 7);
//! let report = model.fit(&dataset);
//! let metrics = model.evaluate(&dataset);
//! assert!(metrics.hits_at_1 >= 0.0 && report.epochs_run > 0);
//! ```

pub use desalign_autodiff as autodiff;
pub use desalign_baselines as baselines;
pub use desalign_core as core;
pub use desalign_eval as eval;
pub use desalign_graph as graph;
pub use desalign_mmkg as mmkg;
pub use desalign_nn as nn;
pub use desalign_parallel as parallel;
pub use desalign_serve as serve;
pub use desalign_telemetry as telemetry;
pub use desalign_tensor as tensor;
pub use desalign_util as util;
